//! The safe epoll wrapper: interest registration and readiness polling.

use crate::sys;
use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// What readiness a registration asks for. `EPOLLRDHUP` (peer shut its
/// write side) is always requested alongside read interest, and
/// `EPOLLERR`/`EPOLLHUP` are reported by the kernel unconditionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer half-closed).
    pub readable: bool,
    /// Wake when the fd accepts writes again.
    pub writable: bool,
}

impl Interest {
    /// Read interest only.
    pub const READABLE: Interest = Interest { readable: true, writable: false };
    /// Write interest only.
    pub const WRITABLE: Interest = Interest { readable: false, writable: true };
    /// No interest — the fd stays registered but reports only errors.
    pub const NONE: Interest = Interest { readable: false, writable: false };

    fn bits(self) -> u32 {
        let mut bits = 0;
        if self.readable {
            bits |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if self.writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }
}

/// One readiness notification out of [`Epoll::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The user token the fd was registered with.
    pub token: u64,
    /// The fd is readable.
    pub readable: bool,
    /// The fd accepts writes.
    pub writable: bool,
    /// An error condition is pending on the fd (`EPOLLERR`).
    pub error: bool,
    /// The peer closed the connection (`EPOLLHUP`).
    pub hangup: bool,
    /// The peer shut down its write side (`EPOLLRDHUP`): reads will
    /// drain what is buffered and then return EOF.
    pub read_closed: bool,
}

/// Reusable readiness buffer for [`Epoll::wait`]; sized once, filled by
/// the kernel each call.
pub struct Events {
    raw: Vec<sys::epoll_event>,
    len: usize,
}

impl Events {
    /// A buffer reporting at most `capacity` events per wait.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { raw: vec![sys::epoll_event { events: 0, u64: 0 }; capacity], len: 0 }
    }

    /// Events delivered by the most recent [`Epoll::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.raw[..self.len].iter().map(|raw| {
            let bits = raw.events;
            Event {
                token: raw.u64,
                readable: bits & sys::EPOLLIN != 0,
                writable: bits & sys::EPOLLOUT != 0,
                error: bits & sys::EPOLLERR != 0,
                hangup: bits & sys::EPOLLHUP != 0,
                read_closed: bits & sys::EPOLLRDHUP != 0,
            }
        })
    }

    /// Number of events delivered by the most recent [`Epoll::wait`].
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the most recent wait timed out with no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// An epoll instance: register fds with a `u64` token, poll readiness.
///
/// Level-triggered (the kernel default): a readable fd keeps reporting
/// readable until drained, which lets the event loop stop mid-stream —
/// e.g. to apply backpressure — without losing the wakeup.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    ///
    /// # Errors
    ///
    /// The `epoll_create1` failure as [`io::Error`].
    pub fn new() -> io::Result<Self> {
        // SAFETY: no pointers involved; the return value is checked.
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { fd })
    }

    fn ctl(&self, op: sys::c_int, fd: RawFd, event: Option<&mut sys::epoll_event>) -> io::Result<()> {
        let ptr = event.map_or(std::ptr::null_mut(), |e| e as *mut sys::epoll_event);
        // SAFETY: `ptr` is null (DEL) or points at a live epoll_event on
        // the caller's stack for the duration of the call.
        let rc = unsafe { sys::epoll_ctl(self.fd, op, fd, ptr) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` failure as [`io::Error`].
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut event = sys::epoll_event { events: interest.bits(), u64: token };
        self.ctl(sys::EPOLL_CTL_ADD, fd, Some(&mut event))
    }

    /// Replaces the interest (and token) of an already-registered fd.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` failure as [`io::Error`].
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut event = sys::epoll_event { events: interest.bits(), u64: token };
        self.ctl(sys::EPOLL_CTL_MOD, fd, Some(&mut event))
    }

    /// Deregisters `fd`.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` failure as [`io::Error`].
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, None)
    }

    /// Blocks until readiness arrives (or `timeout` passes; `None` waits
    /// forever), filling `events`. Returns the event count; an interrupt
    /// (`EINTR`) reports as zero events rather than an error, so callers
    /// just loop.
    ///
    /// # Errors
    ///
    /// Any other `epoll_wait` failure as [`io::Error`].
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: sys::c_int = match timeout {
            None => -1,
            Some(d) if d.is_zero() => 0,
            // Round a sub-millisecond timeout up: 0 would busy-spin.
            Some(d) => d.as_millis().clamp(1, sys::c_int::MAX as u128) as sys::c_int,
        };
        events.len = 0;
        // SAFETY: the buffer outlives the call and its capacity bound is
        // passed as maxevents, so the kernel writes only within it.
        let rc = unsafe {
            sys::epoll_wait(self.fd, events.raw.as_mut_ptr(), events.raw.len() as sys::c_int, timeout_ms)
        };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        events.len = rc as usize;
        Ok(events.len)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: the fd is owned by this instance and closed once.
        unsafe { sys::close(self.fd) };
    }
}

/// Switches a file descriptor's `O_NONBLOCK` flag.
///
/// # Errors
///
/// The `fcntl` failure as [`io::Error`].
pub fn set_nonblocking(fd: RawFd, nonblocking: bool) -> io::Result<()> {
    // SAFETY: F_GETFL/F_SETFL take no pointers; return values checked.
    unsafe {
        let flags = sys::fcntl(fd, sys::F_GETFL);
        if flags < 0 {
            return Err(io::Error::last_os_error());
        }
        let flags = if nonblocking { flags | sys::O_NONBLOCK } else { flags & !sys::O_NONBLOCK };
        if sys::fcntl(fd, sys::F_SETFL, flags) < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    #[test]
    fn wait_times_out_with_no_events() {
        let epoll = Epoll::new().expect("epoll");
        let mut events = Events::with_capacity(4);
        let started = Instant::now();
        let n = epoll.wait(&mut events, Some(Duration::from_millis(20))).expect("wait");
        assert_eq!(n, 0);
        assert!(events.is_empty());
        assert!(started.elapsed() >= Duration::from_millis(15), "the timeout actually elapsed");
    }

    #[test]
    fn socket_becomes_readable_when_peer_writes() {
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");

        let epoll = Epoll::new().expect("epoll");
        epoll.add(server.as_raw_fd(), 7, Interest::READABLE).expect("add");
        let mut events = Events::with_capacity(4);

        // Nothing written yet: a short wait sees nothing.
        assert_eq!(epoll.wait(&mut events, Some(Duration::from_millis(10))).expect("wait"), 0);

        client.write_all(b"ping").expect("write");
        let n = epoll.wait(&mut events, Some(Duration::from_secs(5))).expect("wait");
        assert_eq!(n, 1);
        let event = events.iter().next().expect("one event");
        assert_eq!(event.token, 7);
        assert!(event.readable);
        assert!(!event.error);
    }

    #[test]
    fn modify_switches_interest_and_delete_deregisters() {
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");

        let epoll = Epoll::new().expect("epoll");
        // Write interest on an idle socket: immediately writable.
        epoll.add(server.as_raw_fd(), 1, Interest::WRITABLE).expect("add");
        let mut events = Events::with_capacity(4);
        assert_eq!(epoll.wait(&mut events, Some(Duration::from_secs(5))).expect("wait"), 1);
        assert!(events.iter().next().expect("event").writable);

        // Swap to read interest: quiet until the peer writes.
        epoll.modify(server.as_raw_fd(), 2, Interest::READABLE).expect("modify");
        assert_eq!(epoll.wait(&mut events, Some(Duration::from_millis(10))).expect("wait"), 0);
        client.write_all(b"x").expect("write");
        assert_eq!(epoll.wait(&mut events, Some(Duration::from_secs(5))).expect("wait"), 1);
        let event = events.iter().next().expect("event");
        assert_eq!(event.token, 2, "modify replaced the token");
        assert!(event.readable);

        // After delete the pending readability no longer reports.
        epoll.delete(server.as_raw_fd()).expect("delete");
        assert_eq!(epoll.wait(&mut events, Some(Duration::from_millis(10))).expect("wait"), 0);
    }

    #[test]
    fn peer_shutdown_reports_read_closed() {
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::net::TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");

        let epoll = Epoll::new().expect("epoll");
        epoll.add(server.as_raw_fd(), 9, Interest::READABLE).expect("add");
        client.shutdown(std::net::Shutdown::Write).expect("shutdown");

        let mut events = Events::with_capacity(4);
        assert_eq!(epoll.wait(&mut events, Some(Duration::from_secs(5))).expect("wait"), 1);
        let event = events.iter().next().expect("event");
        assert!(event.read_closed, "EPOLLRDHUP after the peer half-closed");
    }

    #[test]
    fn set_nonblocking_toggles_wouldblock() {
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind");
        let addr = listener.local_addr().expect("addr");
        let _client = std::net::TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");

        set_nonblocking(server.as_raw_fd(), true).expect("nonblocking on");
        let mut buf = [0u8; 8];
        let err = std::io::Read::read(&mut (&server), &mut buf).expect_err("no data yet");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        set_nonblocking(server.as_raw_fd(), false).expect("nonblocking off");
    }
}

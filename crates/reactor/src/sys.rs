//! Raw Linux syscall surface: `extern "C"` declarations and the ABI
//! constants the event loop needs, in the vendored-stand-in style of this
//! workspace (no `libc` crate — the registry is unreachable, and the six
//! calls below are the crate's entire kernel surface).
//!
//! Everything here is `pub(crate)`; the safe wrappers live in
//! [`crate::epoll`] and [`crate::waker`].

#![allow(non_camel_case_types)]

pub(crate) type c_int = i32;
pub(crate) type c_void = std::ffi::c_void;

/// One readiness record, as the kernel fills it in `epoll_wait`.
///
/// The x86 ABI packs this struct (no padding between `events` and the
/// 64-bit user data); other Linux targets use natural alignment. Getting
/// this wrong corrupts every second event, so mirror the kernel headers
/// exactly.
#[repr(C)]
#[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(packed))]
#[derive(Clone, Copy)]
pub(crate) struct epoll_event {
    pub events: u32,
    pub u64: u64,
}

pub(crate) const EPOLL_CLOEXEC: c_int = 0o2000000;

pub(crate) const EPOLL_CTL_ADD: c_int = 1;
pub(crate) const EPOLL_CTL_DEL: c_int = 2;
pub(crate) const EPOLL_CTL_MOD: c_int = 3;

pub(crate) const EPOLLIN: u32 = 0x001;
pub(crate) const EPOLLOUT: u32 = 0x004;
pub(crate) const EPOLLERR: u32 = 0x008;
pub(crate) const EPOLLHUP: u32 = 0x010;
pub(crate) const EPOLLRDHUP: u32 = 0x2000;

pub(crate) const F_GETFL: c_int = 3;
pub(crate) const F_SETFL: c_int = 4;
pub(crate) const O_NONBLOCK: c_int = 0o4000;
pub(crate) const O_CLOEXEC: c_int = 0o2000000;

extern "C" {
    pub(crate) fn epoll_create1(flags: c_int) -> c_int;
    pub(crate) fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    pub(crate) fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    pub(crate) fn close(fd: c_int) -> c_int;
    pub(crate) fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
    pub(crate) fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
    pub(crate) fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    pub(crate) fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

//! Fig. 11 — Colosseum-style validation: the OffloaDNN solution for the
//! 5-task small-scale scenario is deployed into the emulated LTE cell
//! (100 RBs) and the per-task end-to-end latency is traced over 20 s
//! (moving average, window 3), against the per-task latency targets.

use offloadnn_bench::{ascii_chart, write_csv};
use offloadnn_core::heuristic::OffloadnnSolver;
use offloadnn_core::scenario::small_scenario;
use offloadnn_emu::colosseum::{validate, ColosseumConfig};

fn main() {
    let s = small_scenario(5);
    let sol = OffloadnnSolver::new().solve(&s.instance).unwrap();
    let cfg = ColosseumConfig::reference();
    let report = validate(&s.instance, &sol, &cfg).expect("deployment fits the cell");

    println!("== Fig. 11: end-to-end latency over time (moving average, window 3) ==");
    println!(
        "deployment: {} tasks, slices {:?} RBs, admission {:?}",
        s.instance.num_tasks(),
        sol.rbs_int(),
        sol.admission.iter().map(|z| format!("{z:.2}")).collect::<Vec<_>>()
    );

    for t in 0..s.instance.num_tasks() {
        let target = s.instance.tasks[t].max_latency;
        let ma = report.moving_average(t, 3);
        println!(
            "\ntask {} (target {:.1} s): {} completions, mean {:.3} s, p95 {:.3} s, miss rate {:.1}%",
            t + 1,
            target,
            report.stats[t].completed,
            report.mean_latency(t).unwrap_or(0.0),
            report.latency_percentile(t, 0.95).unwrap_or(0.0),
            report.stats[t].miss_rate() * 100.0
        );
        // Print ~20 evenly spaced samples of the smoothed trace.
        let step = (ma.len() / 20).max(1);
        print!("  t[s]:   ");
        for s in ma.iter().step_by(step) {
            print!("{:6.1}", s.completed_at);
        }
        print!("\n  lat[s]: ");
        for s in ma.iter().step_by(step) {
            print!("{:6.2}", s.latency);
        }
        println!();
    }
    println!("\nGPU utilisation: {:.1}%", report.gpu_utilisation() * 100.0);

    // One chart with all five smoothed traces, resampled to a common grid.
    let resampled: Vec<(String, Vec<f64>)> = (0..s.instance.num_tasks())
        .map(|t| {
            let ma = report.moving_average(t, 3);
            let cols = 60usize;
            let ys: Vec<f64> = (0..cols)
                .map(|c| {
                    let target = (c as f64 + 0.5) / cols as f64 * 20.0;
                    ma.iter()
                        .min_by(|a, b| {
                            (a.completed_at - target).abs().total_cmp(&(b.completed_at - target).abs())
                        })
                        .map(|s| s.latency)
                        .unwrap_or(0.0)
                })
                .collect();
            (format!("task{}", t + 1), ys)
        })
        .collect();
    let chart_series: Vec<(&str, &[f64])> =
        resampled.iter().map(|(n, ys)| (n.as_str(), ys.as_slice())).collect();
    println!(
        "{}",
        ascii_chart("end-to-end latency [s] over 20 s (window-3 moving average)", &chart_series, 14)
    );

    let mut rows = Vec::new();
    for (t, (_name, ys)) in resampled.iter().enumerate() {
        for (c, y) in ys.iter().enumerate() {
            rows.push(vec![
                format!("{}", t + 1),
                format!("{:.3}", (c as f64 + 0.5) / 3.0),
                format!("{y:.4}"),
            ]);
        }
    }
    if let Ok(path) = write_csv("fig11_latency", &["task", "time_s", "latency_s"], &rows) {
        println!("csv: {}", path.display());
    }
}

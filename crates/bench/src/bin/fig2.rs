//! Fig. 2 — DNN block training configurations (Table I) on the ResNet-18
//! feature extractor:
//! (left)  testing-accuracy learning curves per configuration;
//! (right) peak GPU memory occupancy during fine-tuning, in MiB.

use offloadnn_bench::{ascii_chart, print_series, write_csv};
use offloadnn_dnn::config::{Config, PathConfig};
use offloadnn_dnn::models::resnet18;
use offloadnn_dnn::repository::Repository;
use offloadnn_dnn::{GroupId, TensorShape};
use offloadnn_profiler::training::MIB;
use offloadnn_profiler::{CurveSimulator, TrainingSetup};

fn main() {
    // Left panel: mean testing accuracy over 16 seeded noisy runs, like
    // averaging real fine-tuning logs.
    let sim = CurveSimulator::reference();
    let total_epochs = 250usize;
    let sample_every = 10usize;
    let bands: Vec<(Config, Vec<f64>)> =
        Config::ALL.iter().map(|&cfg| (cfg, sim.mean_band(cfg, total_epochs, 16).0)).collect();
    let epochs: Vec<usize> = (0..total_epochs).step_by(sample_every).map(|e| e + 1).collect();
    let xs: Vec<String> = epochs.iter().map(|e| e.to_string()).collect();
    let series: Vec<(&str, Vec<f64>)> = bands
        .iter()
        .map(|(cfg, mean)| {
            let name: &str = match cfg {
                Config::A => "CONFIG A",
                Config::B => "CONFIG B",
                Config::C => "CONFIG C",
                Config::D => "CONFIG D",
                Config::E => "CONFIG E",
            };
            (name, epochs.iter().map(|&e| mean[e - 1] * 100.0).collect())
        })
        .collect();
    print_series(
        "Fig. 2 (left): testing accuracy [%] vs training epoch (mean of 16 seeds)",
        "epoch",
        &xs,
        &series,
    );
    let chart_series: Vec<(&str, &[f64])> = series.iter().map(|(n, ys)| (*n, ys.as_slice())).collect();
    println!("\n{}", ascii_chart("accuracy [%] vs epoch", &chart_series, 16));
    let rows: Vec<Vec<String>> = xs
        .iter()
        .enumerate()
        .map(|(i, x)| {
            let mut row = vec![x.clone()];
            row.extend(series.iter().map(|(_, ys)| format!("{:.4}", ys[i])));
            row
        })
        .collect();
    if let Ok(path) = write_csv("fig2_left", &["epoch", "A", "B", "C", "D", "E"], &rows) {
        println!("csv: {}", path.display());
    }

    // Right panel: peak GPU memory while fine-tuning each configuration.
    let setup = TrainingSetup::reference();
    let mut repo = Repository::new();
    let model = repo.add_model(resnet18(60, 1000, TensorShape::new(3, 224, 224)));
    let mut rows = Vec::new();
    for cfg in Config::ALL {
        let path = repo
            .instantiate_path(model, GroupId(0), PathConfig { config: cfg, pruned: false }, 0.8)
            .expect("valid ratio");
        let blocks: Vec<_> = path.blocks.iter().map(|&b| repo.block(b)).collect();
        let mib = setup.peak_training_bytes(&blocks) / MIB;
        rows.push((cfg, mib));
    }
    println!("\n== Fig. 2 (right): peak GPU memory occupancy [MiB] during training ==");
    for (cfg, mib) in &rows {
        println!("  CONFIG {cfg:?}: {mib:8.0} MiB");
    }
    let a = rows[0].1;
    let b = rows[1].1;
    println!("  -> CONFIG B uses {:.1}x less than baseline CONFIG A (paper: ~1.8x)", a / b);
}

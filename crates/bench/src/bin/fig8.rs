//! Fig. 8 — small-scale scenario cost breakdown, optimum vs OffloaDNN:
//! weighted tasks admission ratio, RBs allocated (normalised), total
//! training compute usage, total inference compute usage.

use offloadnn_bench::print_series;
use offloadnn_core::exact::ExactSolver;
use offloadnn_core::heuristic::OffloadnnSolver;
use offloadnn_core::scenario::small_scenario;
use offloadnn_core::SolutionSummary;

fn main() {
    let mut xs = Vec::new();
    let mut panels: Vec<(Vec<f64>, Vec<f64>)> = vec![Default::default(); 4];
    for t in 1..=5 {
        let s = small_scenario(t);
        let h = SolutionSummary::of(&s.instance, &OffloadnnSolver::new().solve(&s.instance).unwrap());
        let o = SolutionSummary::of(&s.instance, &ExactSolver::new().solve(&s.instance).unwrap());
        xs.push(t.to_string());
        for (i, (hv, ov)) in [
            (h.weighted_admission, o.weighted_admission),
            (h.radio_utilisation, o.radio_utilisation),
            (h.training_utilisation, o.training_utilisation),
            (h.compute_utilisation, o.compute_utilisation),
        ]
        .into_iter()
        .enumerate()
        {
            panels[i].0.push(hv);
            panels[i].1.push(ov);
        }
    }
    let titles = [
        "Fig. 8 (left): weighted tasks admission ratio",
        "Fig. 8 (center-left): normalized no. of RBs allocated",
        "Fig. 8 (center-right): total training compute usage",
        "Fig. 8 (right): total inference compute usage",
    ];
    for (i, title) in titles.iter().enumerate() {
        print_series(
            title,
            "T",
            &xs,
            &[("OffloaDNN", panels[i].0.clone()), ("Optimum", panels[i].1.clone())],
        );
    }
}

//! Fig. 10 — large-scale scenario vs task request rate: weighted tasks
//! admission ratio, RBs allocated, total required memory and total
//! inference compute usage, OffloaDNN vs SEM-O-RAN. Also prints the
//! Sec. V-A textual aggregates (DOT cost / training usage per load, and
//! the average OffloaDNN-vs-SEM-O-RAN gains).

use offloadnn_bench::{pct, print_series, saving};
use offloadnn_core::heuristic::OffloadnnSolver;
use offloadnn_core::scenario::{large_scenario, LoadLevel};
use offloadnn_core::SolutionSummary;
use offloadnn_semoran::SemORanSolver;

fn main() {
    let mut xs = Vec::new();
    let mut wadm = (Vec::new(), Vec::new());
    let mut rb = (Vec::new(), Vec::new());
    let mut mem = (Vec::new(), Vec::new());
    let mut comp = (Vec::new(), Vec::new());
    let mut dot_cost = Vec::new();
    let mut train_usage = Vec::new();
    let mut admitted = (Vec::new(), Vec::new());

    for load in LoadLevel::ALL {
        let s = large_scenario(load);
        let off = OffloadnnSolver::new().solve(&s.instance).unwrap();
        let osum = SolutionSummary::of(&s.instance, &off);
        let sem = SemORanSolver::new().solve(&s.instance).unwrap();
        let b = &s.instance.budgets;

        xs.push(load.name().to_owned());
        wadm.0.push(osum.weighted_admission);
        wadm.1.push(sem.value);
        rb.0.push(osum.radio_utilisation);
        rb.1.push(sem.rbs_used / b.rbs);
        mem.0.push(osum.memory_utilisation);
        mem.1.push(sem.memory_used / b.memory_bytes);
        comp.0.push(osum.compute_utilisation);
        comp.1.push(sem.compute_used / b.compute_seconds);
        dot_cost.push(osum.total_cost);
        train_usage.push(osum.training_utilisation);
        admitted.0.push(off.admitted_tasks() as f64);
        admitted.1.push(sem.admitted_tasks() as f64);
    }

    print_series(
        "Fig. 10 (left): weighted tasks admission ratio",
        "load",
        &xs,
        &[("OffloaDNN", wadm.0.clone()), ("SEM-O-RAN", wadm.1.clone())],
    );
    print_series(
        "Fig. 10 (center-left): normalized no. of RBs allocated",
        "load",
        &xs,
        &[("OffloaDNN", rb.0.clone()), ("SEM-O-RAN", rb.1.clone())],
    );
    print_series(
        "Fig. 10 (center-right): normalized total required memory",
        "load",
        &xs,
        &[("OffloaDNN", mem.0.clone()), ("SEM-O-RAN", mem.1.clone())],
    );
    print_series(
        "Fig. 10 (right): total inference compute usage",
        "load",
        &xs,
        &[("OffloaDNN", comp.0.clone()), ("SEM-O-RAN", comp.1.clone())],
    );

    println!("\n== Sec. V-A aggregates ==");
    println!(
        "OffloaDNN total DOT cost per load:  [{:.2}, {:.2}, {:.2}]  (paper: [0.35, 0.44, 0.74])",
        dot_cost[0], dot_cost[1], dot_cost[2]
    );
    println!(
        "OffloaDNN training usage per load:  [{:.2}, {:.2}, {:.2}]  (paper: [0.81, 0.81, 0.67])",
        train_usage[0], train_usage[1], train_usage[2]
    );

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let task_gain = (avg(&admitted.0) - avg(&admitted.1)) / avg(&admitted.1);
    println!("\nAverage gains of OffloaDNN over SEM-O-RAN:");
    println!("  admitted offloaded tasks: +{}   (paper: +26.9%)", pct(task_gain));
    println!("  memory usage saving:      {}   (paper: 82.5%)", pct(saving(avg(&mem.0), avg(&mem.1))));
    println!("  inference compute saving: {}   (paper: 77.3%)", pct(saving(avg(&comp.0), avg(&comp.1))));
    println!("  radio (RBs) saving:       {}   (paper: 4.4%)", pct(saving(avg(&rb.0), avg(&rb.1))));
    let per_task_rb = |rb: &[f64], adm: &[f64]| -> f64 {
        avg(&rb.iter().zip(adm).map(|(r, a)| r / a.max(1.0)).collect::<Vec<_>>())
    };
    println!(
        "  radio per admitted task:  {}   (OffloaDNN serves more tasks with the same cell)",
        pct(saving(per_task_rb(&rb.0, &admitted.0), per_task_rb(&rb.1, &admitted.1)))
    );
}

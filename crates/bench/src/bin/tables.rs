//! Tables I, II and IV of the paper, regenerated from the implementation
//! (Table III is the notation table and lives in the rustdoc).

use offloadnn_bench::print_table;
use offloadnn_core::scenario::{large_scenario, small_scenario, LoadLevel};
use offloadnn_dnn::config::{Config, PathConfig};
use offloadnn_profiler::dataset;

fn main() {
    // Table I: block configurations.
    let rows: Vec<Vec<String>> = Config::ALL
        .iter()
        .flat_map(|&c| {
            [false, true].into_iter().map(move |pruned| {
                let cfg = PathConfig { config: c, pruned };
                vec![
                    cfg.label(),
                    format!("shared prefix = {} blocks", c.shared_prefix()),
                    if c.from_scratch() { "from scratch".into() } else { "fine-tuned".into() },
                    if pruned { "fine-tuned blocks pruned 80%".into() } else { "-".into() },
                ]
            })
        })
        .collect();
    print_table("Table I: DNN block configurations (ResNet)", &["name", "sharing", "init", "pruning"], &rows);

    // Table II: base dataset.
    let d = dataset::base_dataset();
    let rows: Vec<Vec<String>> = d
        .sections
        .iter()
        .map(|s| {
            vec![s.name.clone(), format!("{} categories (e.g. {})", s.categories.len(), s.categories[0])]
        })
        .collect();
    print_table("Table II: base dataset description", &["objects", "description"], &rows);
    println!("total: {} categories", d.num_categories());

    // Table IV: scenario parameters as actually instantiated.
    let small = small_scenario(5);
    let large = large_scenario(LoadLevel::Medium);
    let fmt = |s: &offloadnn_core::Scenario, name: &str| -> Vec<String> {
        let i = &s.instance;
        vec![
            name.into(),
            i.num_tasks().to_string(),
            format!("{}", s.repo.models().len()),
            format!("{}", i.options[0].len()),
            format!("{}", i.budgets.rbs),
            format!("{}", i.budgets.compute_seconds),
            format!("{}", i.budgets.training_seconds),
            format!("{:.0e}", i.budgets.memory_bytes),
            format!("{}", i.alpha),
        ]
    };
    print_table(
        "Table IV: scenario parameters (as instantiated)",
        &["scenario", "T", "|D|", "options/task", "R [RBs]", "C [s]", "Ct [s]", "M [B]", "alpha"],
        &[fmt(&small, "small"), fmt(&large, "large")],
    );
}

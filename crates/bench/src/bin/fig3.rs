//! Fig. 3 — effect of 80 % structured pruning on each Table I
//! configuration after 100 epochs of fine-tuning for the "Musical
//! instruments" task:
//! (left)  inference compute time on a dummy input tensor, in ms;
//! (right) average class accuracy for "electric guitar", in %.

use offloadnn_bench::print_table;
use offloadnn_dnn::config::{Config, PathConfig};
use offloadnn_dnn::models::resnet18;
use offloadnn_dnn::repository::Repository;
use offloadnn_dnn::{GroupId, TensorShape};
use offloadnn_profiler::cost::{CostTable, ProfileConfig};
use offloadnn_profiler::dataset;
use offloadnn_profiler::AccuracyModel;

fn main() {
    let profile = ProfileConfig::reference();
    let acc = AccuracyModel::reference();
    let mut repo = Repository::new();
    let model = repo.add_model(resnet18(60, 1000, TensorShape::new(3, 224, 224)));
    let group = GroupId(0); // "Musical instruments" fine-tuning group

    // Materialise all ten paths, then profile.
    let paths = repo.all_paths(model, group, 0.8).expect("valid ratio");
    let table = CostTable::profile(&repo, &profile);

    // Per-class offset: Fig. 3 reports a single class ("electric guitar")
    // rather than the 60-class average the learning curves describe.
    let class_offset = 0.04 - dataset::category_difficulty("electric guitar");
    let fine_tune_epochs = 100;

    let mut rows = Vec::new();
    for cfg in Config::ALL {
        let full = paths.iter().find(|p| p.config == PathConfig { config: cfg, pruned: false }).unwrap();
        let pruned = paths.iter().find(|p| p.config == PathConfig { config: cfg, pruned: true }).unwrap();
        let t_full = table.path_compute_seconds(full) * 1e3;
        let t_pruned = table.path_compute_seconds(pruned) * 1e3;

        let a_full = (acc.curve(cfg, fine_tune_epochs) + class_offset) * 100.0;
        let pruned_fraction = 1.0 - repo.path_params(pruned) as f64 / repo.path_params(full).max(1) as f64;
        let a_pruned = a_full - acc.prune_penalty(0.8, pruned_fraction) * 100.0;

        rows.push(vec![
            format!("CONFIG {cfg:?}"),
            format!("{t_full:.2}"),
            format!("{t_pruned:.2}"),
            format!("{a_full:.1}"),
            format!("{a_pruned:.1}"),
        ]);
    }
    print_table(
        "Fig. 3: pruning effects per configuration (ResNet-18, ratio 0.8, 100-epoch fine-tune)",
        &["config", "time w/o prune [ms]", "time pruned [ms]", "acc w/o prune [%]", "acc pruned [%]"],
        &rows,
    );
    println!(
        "\nShape checks: CONFIG B-pruned retains the most compute (least pruned blocks);\n\
         CONFIG A-pruned is fastest; every pruned accuracy sits below its unpruned version,\n\
         with CONFIG B dropping the least."
    );
}

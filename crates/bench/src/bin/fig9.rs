//! Fig. 9 — large-scale scenario: per-task admission ratio under
//! OffloaDNN (top) vs SEM-O-RAN (bottom), for low / medium / high task
//! request rates.

use offloadnn_core::heuristic::OffloadnnSolver;
use offloadnn_core::scenario::{large_scenario, LoadLevel};
use offloadnn_semoran::SemORanSolver;

fn main() {
    for load in LoadLevel::ALL {
        let s = large_scenario(load);
        let off = OffloadnnSolver::new().solve(&s.instance).unwrap();
        let sem = SemORanSolver::new().solve(&s.instance).unwrap();
        println!("\n== Fig. 9 ({} request rate, {} req/s per task) ==", load.name(), load.rate_hz());
        println!("{:>8} {:>12} {:>12}", "task", "OffloaDNN", "SEM-O-RAN");
        for t in 0..s.instance.num_tasks() {
            println!(
                "{:>8} {:>12.2} {:>12.2}",
                t + 1,
                off.admission[t],
                if sem.admitted[t] { 1.0 } else { 0.0 }
            );
        }
        println!(
            "admitted: OffloaDNN {} (fractional z allowed) vs SEM-O-RAN {} (binary)",
            off.admitted_tasks(),
            sem.admitted_tasks()
        );
    }
}

//! Fig. 7 — small-scale scenario: total DOT cost and memory utilisation
//! of active DNN blocks, optimum vs OffloaDNN, as T varies. Both are
//! normalised the way the paper plots them (cost by the all-rejected
//! upper bound, memory by the budget M).

use offloadnn_bench::print_series;
use offloadnn_core::exact::ExactSolver;
use offloadnn_core::heuristic::OffloadnnSolver;
use offloadnn_core::objective::DotSolution;
use offloadnn_core::scenario::small_scenario;
use offloadnn_core::SolutionSummary;

fn main() {
    let mut xs = Vec::new();
    let (mut hc, mut oc, mut hm, mut om) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for t in 1..=5 {
        let s = small_scenario(t);
        let reject_cost = DotSolution::rejected(&s.instance).cost.total();
        let h = OffloadnnSolver::new().solve(&s.instance).unwrap();
        let o = ExactSolver::new().solve(&s.instance).unwrap();
        xs.push(t.to_string());
        hc.push(h.cost.total() / reject_cost);
        oc.push(o.cost.total() / reject_cost);
        hm.push(SolutionSummary::of(&s.instance, &h).memory_utilisation);
        om.push(SolutionSummary::of(&s.instance, &o).memory_utilisation);
    }
    print_series(
        "Fig. 7 (left): normalized DOT cost vs T",
        "T",
        &xs,
        &[("OffloaDNN", hc.clone()), ("Optimum", oc.clone())],
    );
    print_series(
        "Fig. 7 (right): normalized total required memory vs T",
        "T",
        &xs,
        &[("OffloaDNN", hm), ("Optimum", om)],
    );
    let worst = hc.iter().zip(&oc).map(|(h, o)| h / o - 1.0).fold(0.0f64, f64::max);
    println!("\nOffloaDNN cost is within {:.1}% of the optimum at every T.", worst * 100.0);
}

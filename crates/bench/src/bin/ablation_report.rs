//! Ablations of OffloaDNN's design choices (quality, not timing — see the
//! criterion `ablation` bench for runtimes):
//!
//! 1. clique ordering (the paper's compute-time rule vs alternatives);
//! 2. first-branch vs beam search;
//! 3. greedy vs optimal inner allocator;
//! 4. the objective weight `alpha`;
//! 5. gain decomposition (sharing / pruning / quality switched off);
//! 6. the inner allocator's optimality certificate (Lagrangian dual gap).

use offloadnn_bench::print_table;
use offloadnn_core::alloc::{AllocSettings, AllocTask};
use offloadnn_core::dual::{dual_bound, total_utility};
use offloadnn_core::heuristic::{AllocatorKind, OffloadnnSolver};
use offloadnn_core::scenario::{large_scenario, small_scenario, LoadLevel};
use offloadnn_core::tree::CliqueOrdering;
use offloadnn_core::SolutionSummary;

fn main() {
    // --- 1. Clique ordering ---------------------------------------------
    let s = large_scenario(LoadLevel::High);
    let mut rows = Vec::new();
    for (name, ordering) in [
        ("compute-time (paper)", CliqueOrdering::ComputeTime),
        ("memory", CliqueOrdering::Memory),
        ("training cost", CliqueOrdering::TrainingCost),
        ("accuracy-first", CliqueOrdering::AccuracyFirst),
        ("unsorted", CliqueOrdering::Unsorted),
    ] {
        let sol = OffloadnnSolver::with_ordering(ordering).solve(&s.instance).unwrap();
        let sum = SolutionSummary::of(&s.instance, &sol);
        rows.push(vec![
            name.to_owned(),
            format!("{:.4}", sum.total_cost),
            format!("{}", sum.admitted_tasks),
            format!("{:.3}", sum.memory_utilisation),
            format!("{:.3}", sum.training_utilisation),
            format!("{:.4}", sum.compute_utilisation),
        ]);
    }
    print_table(
        "Ablation 1: clique ordering (large scenario, high load)",
        &["ordering", "DOT cost", "admitted", "memory", "training", "inference"],
        &rows,
    );

    // --- 2. Beam width ----------------------------------------------------
    let mut rows = Vec::new();
    for k in [1usize, 2, 4, 8, 16] {
        let sol = OffloadnnSolver::with_beam(k).solve(&s.instance).unwrap();
        rows.push(vec![
            k.to_string(),
            format!("{:.4}", sol.cost.total()),
            format!("{:.4}", sol.solve_seconds),
        ]);
    }
    print_table(
        "Ablation 2: beam width (1 = the paper's first branch)",
        &["beam", "DOT cost", "runtime [s]"],
        &rows,
    );

    // --- 3. Inner allocator ------------------------------------------------
    let mut rows = Vec::new();
    for (name, alloc) in [
        ("greedy priority (paper)", AllocatorKind::GreedyPriority),
        ("coordinate ascent", AllocatorKind::CoordinateAscent),
    ] {
        let solver = OffloadnnSolver { allocator: alloc, ..OffloadnnSolver::new() };
        let sol = solver.solve(&s.instance).unwrap();
        rows.push(vec![
            name.to_owned(),
            format!("{:.4}", sol.cost.total()),
            format!("{:.3}", sol.weighted_admission(&s.instance)),
        ]);
    }
    print_table(
        "Ablation 3: inner z/r allocator (high load)",
        &["allocator", "DOT cost", "weighted admission"],
        &rows,
    );

    // --- 4. Alpha sweep -----------------------------------------------------
    let base = small_scenario(5);
    let mut rows = Vec::new();
    for alpha in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let mut inst = base.instance.clone();
        inst.alpha = alpha;
        let sol = OffloadnnSolver::new().solve(&inst).unwrap();
        let sum = SolutionSummary::of(&inst, &sol);
        rows.push(vec![
            format!("{alpha}"),
            format!("{:.3}", sum.weighted_admission),
            format!("{}", sum.admitted_tasks),
            format!("{:.3}", sum.radio_utilisation),
            format!("{:.4}", sum.total_cost),
        ]);
    }
    print_table(
        "Ablation 4: objective weight alpha (small scenario, T = 5)",
        &["alpha", "weighted admission", "admitted", "radio", "DOT cost"],
        &rows,
    );

    // --- 5. Gain decomposition ------------------------------------------------
    // Which innovation buys what: rerun the large scenario with sharing,
    // pruning, or quality adaptation individually disabled.
    let base_inst = &large_scenario(LoadLevel::Medium).instance;
    let mut rows = Vec::new();
    for (name, inst) in [
        ("full OffloaDNN".to_owned(), base_inst.clone()),
        ("- block sharing".to_owned(), offloadnn_core::ablate::without_sharing(base_inst)),
        ("- pruning".to_owned(), offloadnn_core::ablate::without_pruning(base_inst)),
        ("- quality adaptation".to_owned(), offloadnn_core::ablate::without_quality_adaptation(base_inst)),
    ] {
        let sol = OffloadnnSolver::new().solve(&inst).unwrap();
        let sum = SolutionSummary::of(&inst, &sol);
        rows.push(vec![
            name,
            format!("{}", sum.admitted_tasks),
            format!("{:.3}", sum.memory_utilisation),
            format!("{:.4}", sum.compute_utilisation),
            format!("{:.3}", sum.radio_utilisation),
            format!("{:.4}", sum.total_cost),
        ]);
    }
    print_table(
        "Ablation 5: gain decomposition (large scenario, medium load)",
        &["variant", "admitted", "memory", "inference", "radio", "DOT cost"],
        &rows,
    );
    println!(
        "Note the greedy anomaly: removing pruned options can *lower* the DOT cost.\n\
         The first-branch rule prioritises inference compute time, so fast pruned\n\
         paths shadow unpruned shared paths that would cost less radio and training\n\
         — the price of O(T^2) vs the exponential optimum, and exactly the kind of\n\
         gap Fig. 8 (center-right) shows against the optimum."
    );

    // --- 6. Dual certificate -------------------------------------------------
    let tasks: Vec<AllocTask> = (0..20)
        .map(|i| {
            let beta = 350e3;
            let b = 0.35e6;
            let max_latency = 0.2 + 0.02 * (i + 1) as f64;
            AllocTask {
                priority: 1.0 - 0.05 * i as f64,
                lambda: 7.5,
                beta,
                bits_per_rb: b,
                r_lat: beta / (b * (max_latency - 0.008)),
                proc_seconds: 0.008,
            }
        })
        .collect();
    let settings = AllocSettings { alpha: 0.5, rbs: 100.0, compute: 10.0 };
    let primal = offloadnn_core::alloc::coordinate_ascent(&tasks, &settings);
    let utility = total_utility(&tasks, &settings, &primal.z);
    let bound = dual_bound(&tasks, &settings, 2000);
    println!("\n== Ablation 6: Lagrangian certificate of the inner allocator ==");
    println!("primal utility (coordinate ascent): {utility:.5}");
    println!("dual upper bound:                   {:.5}", bound.utility_bound);
    println!(
        "relative gap: {:.3}%  (multipliers: mu = {:.4}, nu = {:.5})",
        (bound.utility_bound - utility) / utility.abs().max(1e-12) * 100.0,
        bound.mu,
        bound.nu
    );
}

//! Extension experiments beyond the paper's evaluation:
//!
//! 1. device-energy accounting — the paper's motivation ("offloading
//!    spares device batteries") made quantitative;
//! 2. GPU batching on the edge server under saturation;
//! 3. bursty (MMPP) traffic stress against the Fig. 11 deployment;
//! 4. multi-edge fragmentation — the same capacity split across several
//!    edge platforms serves less, because block sharing is confined to an
//!    edge and memory fragments.

use offloadnn_bench::print_table;
use offloadnn_core::heuristic::OffloadnnSolver;
use offloadnn_core::scenario::small_scenario;
use offloadnn_emu::colosseum::{deployments, ColosseumConfig};
use offloadnn_emu::energy::{energy_report, DeviceEnergyModel};
use offloadnn_emu::sim::{run, BatchPolicy, EmulatorConfig, TaskDeployment};
use offloadnn_radio::ArrivalProcess;

fn main() {
    let s = small_scenario(5);
    let sol = OffloadnnSolver::new().solve(&s.instance).unwrap();
    let cfg = ColosseumConfig::reference();
    let deps = deployments(&s.instance, &sol, &cfg);

    // --- 1. Device energy -------------------------------------------------
    let device = DeviceEnergyModel::smartphone();
    // Local alternative: the full unpruned model of each task's choice.
    let local_flops: Vec<u64> = (0..5)
        .map(|t| {
            let o = sol.choices[t].unwrap();
            s.repo.path_flops(&s.instance.options[t][o].path).max(3_600_000_000)
        })
        .collect();
    let report = energy_report(&device, &deps, &local_flops);
    let rows: Vec<Vec<String>> = deps
        .iter()
        .zip(&report.per_task)
        .map(|(d, &(off, loc, save))| {
            vec![
                d.name.clone(),
                format!("{:.0} mJ", off * 1e3),
                format!("{:.0} mJ", loc * 1e3),
                format!("{:.1}x", save),
                format!("{:.0} ms", device.local_latency_s(local_flops[0]) * 1e3),
            ]
        })
        .collect();
    print_table(
        "Extension 1: per-image device energy, offload vs local execution",
        &["task", "offload", "local", "saving", "local latency"],
        &rows,
    );
    println!("mean energy saving from offloading: {:.1}x", report.mean_saving);

    // --- 2. GPU batching under saturation --------------------------------
    let mut heavy: Vec<TaskDeployment> = deps.clone();
    for d in &mut heavy {
        d.proc_seconds = 0.12; // an edge GPU ~16x slower: demand 3 GPU-s/s
        d.max_latency = 2.5;
    }
    let mut ecfg = EmulatorConfig { duration: 15.0, ..EmulatorConfig::reference() };
    let unbatched = run(&heavy, &ecfg).unwrap();
    ecfg.batching = Some(BatchPolicy { max_batch: 8, marginal_cost: 0.25 });
    let batched = run(&heavy, &ecfg).unwrap();
    let done = |r: &offloadnn_emu::EmulationReport| r.stats.iter().map(|s| s.completed).sum::<u64>();
    println!("\n== Extension 2: GPU batching on a saturated edge (0.12 s/inference, 25 req/s) ==");
    println!(
        "completions in 15 s: {} unbatched -> {} batched (+{:.0}%)",
        done(&unbatched),
        done(&batched),
        (done(&batched) as f64 / done(&unbatched) as f64 - 1.0) * 100.0
    );

    // --- 3. Bursty traffic stress ------------------------------------------
    let mut bursty = deps;
    for d in &mut bursty {
        let mean = d.arrivals.rate_hz();
        d.arrivals = ArrivalProcess::Bursty {
            calm_rate_hz: mean * 0.5,
            burst_rate_hz: mean * 3.0,
            mean_calm_s: 4.0,
            mean_burst_s: 1.0,
        };
    }
    let ecfg = EmulatorConfig { duration: 60.0, ..EmulatorConfig::reference() };
    let stressed = run(&bursty, &ecfg).unwrap();
    println!("\n== Extension 3: bursty (MMPP) traffic against the Fig. 11 deployment ==");
    println!("{:>14} {:>10} {:>10} {:>12} {:>10}", "task", "completed", "mean [s]", "p95 [s]", "misses");
    for (t, st) in stressed.stats.iter().enumerate() {
        println!(
            "{:>14} {:>10} {:>10.3} {:>12.3} {:>9.1}%",
            st.name,
            st.completed,
            stressed.mean_latency(t).unwrap_or(0.0),
            stressed.latency_percentile(t, 0.95).unwrap_or(0.0),
            st.miss_rate() * 100.0
        );
    }
    println!(
        "Slices sized for the mean rate absorb 3x bursts only through queueing: the tight\n\
         tasks miss deadlines during bursts — the cost of Table IV's deterministic sizing."
    );

    // --- 4. Multi-edge fragmentation ---------------------------------------
    use offloadnn_core::multi::{solve as multi_solve, split_edges};
    let mut tight = small_scenario(5).instance;
    tight.budgets.memory_bytes = 1.6e9;
    println!("\n== Extension 4: multi-edge fragmentation (1.6 GB total memory) ==");
    println!("{:>8} {:>20} {:>12}", "edges", "weighted admission", "admitted");
    for n in [1usize, 2, 4] {
        let multi = split_edges(&tight, n);
        let sol = multi_solve(&multi).unwrap();
        println!("{:>8} {:>20.3} {:>12}", n, sol.weighted_admission(&multi), sol.admitted_tasks());
    }
    println!("One big edge beats the same capacity in fragments: sharing stops at the edge boundary.");

    // --- 5. INT8 quantisation as a second compression axis -----------------
    use offloadnn_core::scenario::quantized_small_scenario;
    use offloadnn_core::SolutionSummary;
    let q = quantized_small_scenario(5);
    let qsol = OffloadnnSolver::new().solve(&q.instance).unwrap();
    let qsum = SolutionSummary::of(&q.instance, &qsol);
    let base = small_scenario(5);
    let bsol = OffloadnnSolver::new().solve(&base.instance).unwrap();
    let bsum = SolutionSummary::of(&base.instance, &bsol);
    println!("\n== Extension 5: INT8 quantisation in the path space ==");
    println!("{:>24} {:>10} {:>10} {:>10}", "", "memory", "inference", "cost");
    println!(
        "{:>24} {:>10.3} {:>10.4} {:>10.4}",
        "FP32 only", bsum.memory_utilisation, bsum.compute_utilisation, bsum.total_cost
    );
    println!(
        "{:>24} {:>10.3} {:>10.4} {:>10.4}",
        "FP32 + INT8 variants", qsum.memory_utilisation, qsum.compute_utilisation, qsum.total_cost
    );
    for (t, c) in qsol.choices.iter().enumerate() {
        if let Some(o) = c {
            println!("  task {} -> {}", t + 1, q.instance.options[t][*o].label);
        }
    }
}

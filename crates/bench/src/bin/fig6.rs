//! Fig. 6 — average runtime of the optimum (exhaustive tree traversal)
//! vs the OffloaDNN heuristic in the small-scale scenario, as the number
//! of inference tasks T grows.

use offloadnn_bench::print_series;
use offloadnn_core::exact::ExactSolver;
use offloadnn_core::heuristic::OffloadnnSolver;
use offloadnn_core::scenario::small_scenario;

fn main() {
    let reps = 3;
    let mut xs = Vec::new();
    let (mut heu_t, mut opt_t) = (Vec::new(), Vec::new());
    for t in 1..=5 {
        let s = small_scenario(t);
        let mut h_sum = 0.0;
        let mut o_sum = 0.0;
        for _ in 0..reps {
            h_sum += OffloadnnSolver::new().solve(&s.instance).unwrap().solve_seconds;
            o_sum += ExactSolver::new().solve(&s.instance).unwrap().solve_seconds;
        }
        xs.push(t.to_string());
        heu_t.push(h_sum / reps as f64);
        opt_t.push(o_sum / reps as f64);
    }
    print_series(
        "Fig. 6: average runtime [s] vs number of inference tasks T",
        "T",
        &xs,
        &[("OffloaDNN", heu_t.clone()), ("Optimum", opt_t.clone())],
    );
    for i in 0..xs.len() {
        let speedup = opt_t[i] / heu_t[i].max(1e-12);
        println!("T={}: OffloaDNN is {:.0}x faster", i + 1, speedup);
    }
}

//! Per-phase latency breakdown of an instrumented end-to-end run.
//!
//! Drives the sharded admission service with the closed-loop load
//! generator (populating the `solver.*` and `serve.*` phases), replays a
//! short Colosseum-style emulation (populating `emu.step`), and prints
//! the global telemetry registry: one latency histogram per phase —
//! clique build, tree descent, convex allocation, ingress, batch
//! assembly, drain — plus counters, gauges and the event ring.
//!
//! The run is then repeated with telemetry switched off
//! ([`offloadnn_telemetry::set_enabled`]) to show (a) the wall-clock
//! overhead of instrumentation and (b) that the service's conservation
//! invariant holds identically in both configurations. A third pass
//! replays one Zipf-skewed stream twice — plan cache off, then on — and
//! prints the before/after solve-path comparison (solver rounds, mean
//! round time, throughput, hit rate). Exits non-zero if conservation is
//! violated in any run.
//!
//! ```text
//! cargo run --release -p offloadnn-bench --bin telemetry_report -- \
//!     --requests 5000 --shards 4 --seed 7
//! ```

use offloadnn_core::heuristic::OffloadnnSolver;
use offloadnn_core::scenario::small_scenario;
use offloadnn_emu::colosseum::{validate, ColosseumConfig};
use offloadnn_plancache::PlanCacheConfig;
use offloadnn_radio::ArrivalProcess;
use offloadnn_serve::{loadgen, LoadgenConfig, LoadgenReport, ServiceConfig};
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "\
telemetry_report — per-phase latency breakdown of an instrumented load run

USAGE: telemetry_report [OPTIONS]

OPTIONS (all optional; defaults in brackets):
  --requests N   total requests offered to the service      [5000]
  --shards N     worker shards                              [4]
  --ues N        UEs in the reference scenario              [5]
  --seed N       RNG seed (printed in the run header)       [7]
  --jsonl        also emit the registry as JSON lines
  -h, --help     print this help
";

struct Args {
    requests: u64,
    shards: usize,
    ues: usize,
    seed: u64,
    jsonl: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self { requests: 5_000, shards: 4, ues: 5, seed: 7, jsonl: false }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "--jsonl" => {
                args.jsonl = true;
                continue;
            }
            _ => {}
        }
        let value = it.next().ok_or_else(|| format!("{flag}: missing value"))?;
        let bad = |e: &dyn std::fmt::Display| format!("{flag} {value}: {e}");
        match flag.as_str() {
            "--requests" => args.requests = value.parse().map_err(|e| bad(&e))?,
            "--shards" => args.shards = value.parse().map_err(|e| bad(&e))?,
            "--ues" => args.ues = value.parse().map_err(|e| bad(&e))?,
            "--seed" => args.seed = value.parse().map_err(|e| bad(&e))?,
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

/// One full instrumented workload: a closed-loop service load run plus a
/// short emulation replay of the same scenario's solution.
fn run_workload(args: &Args) -> Result<(LoadgenReport, Duration), Box<dyn std::error::Error>> {
    let scenario = small_scenario(args.ues);
    let service_config = ServiceConfig {
        shards: args.shards,
        batch_window: Duration::from_micros(500),
        ..ServiceConfig::default()
    };
    let cfg = LoadgenConfig {
        requests: args.requests,
        process: ArrivalProcess::Poisson { rate_hz: 20_000.0 },
        seed: args.seed,
        max_active: 64,
        time_scale: 0.0,
        ..LoadgenConfig::default()
    };
    let start = Instant::now();
    let report = loadgen::run(service_config, cfg, &scenario.instance);

    // A short emulation pass so the `emu.step` phase and event counters
    // appear alongside the solver/serve phases.
    let solution = OffloadnnSolver::new().solve(&scenario.instance)?;
    let mut emu_cfg = ColosseumConfig::reference();
    emu_cfg.emulator.duration = 5.0;
    validate(&scenario.instance, &solution, &emu_cfg)?;
    Ok((report, start.elapsed()))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    // Pass 1: instrumented. Phases/counters/events land in the global
    // registry; the service's own metrics land in its per-service one.
    offloadnn_telemetry::set_enabled(true);
    let (on_report, on_wall) = match run_workload(&args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let snapshot = offloadnn_telemetry::global().snapshot();

    println!("=== instrumented run ===");
    println!("{on_report}");
    println!();
    println!("=== per-phase telemetry (global registry) ===");
    print!("{snapshot}");
    if args.jsonl {
        println!();
        println!("=== registry as JSON lines ===");
        print!("{}", snapshot.to_jsonl());
    }

    // Pass 2: telemetry off — every span!/count!/event! reduces to one
    // branch. The functional accounting must be unaffected.
    offloadnn_telemetry::set_enabled(false);
    let (off_report, off_wall) = match run_workload(&args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    offloadnn_telemetry::set_enabled(true);

    println!();
    println!("=== overhead (same workload, telemetry off) ===");
    println!(
        "wall clock: {on_wall:.3?} instrumented vs {off_wall:.3?} off ({:+.1}%)",
        100.0 * (on_wall.as_secs_f64() - off_wall.as_secs_f64()) / off_wall.as_secs_f64().max(1e-9),
    );
    for (name, report) in [("on", &on_report), ("off", &off_report)] {
        println!(
            "conservation (telemetry {name}): {}",
            if report.is_conserved() { "OK" } else { "VIOLATED" }
        );
    }

    if !on_report.is_conserved() || !off_report.is_conserved() {
        eprintln!("error: conservation violated — a request was lost or double-counted");
        return ExitCode::FAILURE;
    }
    let have = |p: &str| snapshot.phases.iter().any(|(n, h)| *n == p && h.count > 0);
    for phase in [
        "solver.clique",
        "solver.tree",
        "solver.alloc",
        "serve.ingress",
        "serve.batch",
        "serve.drain",
        "emu.step",
    ] {
        if !have(phase) {
            eprintln!("error: phase {phase} recorded no samples — instrumentation regressed");
            return ExitCode::FAILURE;
        }
    }

    // Pass 3: the same Zipf-skewed stream twice — plan cache off, then
    // on — isolating what the cache saves on the solve path.
    let scenario = small_scenario(args.ues);
    let cold_config = ServiceConfig {
        shards: args.shards,
        batch_window: Duration::from_micros(500),
        ..ServiceConfig::default()
    };
    let warm_config = ServiceConfig { plan_cache: Some(PlanCacheConfig::default()), ..cold_config };
    let zipf = LoadgenConfig {
        requests: args.requests,
        process: ArrivalProcess::Poisson { rate_hz: 20_000.0 },
        seed: args.seed,
        max_active: 64,
        shape_skew: 1.2,
        shape_pool: 32,
        ..LoadgenConfig::default()
    };
    let cold = loadgen::run(cold_config, zipf, &scenario.instance);
    let warm = loadgen::run(warm_config, zipf, &scenario.instance);
    println!();
    println!("=== plan cache (same Zipf stream: skew 1.2, pool 32; cache off -> on) ===");
    let (cm, wm) = (&cold.drain.metrics, &warm.drain.metrics);
    println!("solver rounds:   {} -> {}", cm.solver_rounds, wm.solver_rounds);
    println!("round mean:      {:.3?} -> {:.3?}", cm.round_time.mean(), wm.round_time.mean());
    println!(
        "throughput:      {:.0} -> {:.0} verdicts/s ({:+.1}%)",
        cold.throughput_hz(),
        warm.throughput_hz(),
        100.0 * (warm.throughput_hz() - cold.throughput_hz()) / cold.throughput_hz().max(1e-9),
    );
    let Some(pc) = warm.drain.plan_cache else {
        eprintln!("error: cached run reported no plan-cache stats");
        return ExitCode::FAILURE;
    };
    println!(
        "hit rate:        {:.1}% ({} hits, {} negative, {} misses)",
        100.0 * pc.hit_rate(),
        pc.hits,
        pc.negative_hits,
        pc.misses,
    );
    if !cold.is_conserved() || !warm.is_conserved() {
        eprintln!("error: conservation violated in the plan-cache comparison");
        return ExitCode::FAILURE;
    }
    if pc.hits + pc.negative_hits == 0 {
        eprintln!("error: a Zipf-skewed stream produced zero plan-cache hits");
        return ExitCode::FAILURE;
    }
    let after = offloadnn_telemetry::global().snapshot();
    if !after.phases.iter().any(|(n, h)| *n == "plancache.lookup" && h.count > 0) {
        eprintln!("error: phase plancache.lookup recorded no samples — instrumentation regressed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

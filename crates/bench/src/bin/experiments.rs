//! Runs the complete experiment suite and prints a paper-vs-measured
//! summary for every table and figure — the source of `EXPERIMENTS.md`.

use offloadnn_bench::{pct, saving};
use offloadnn_core::exact::ExactSolver;
use offloadnn_core::heuristic::OffloadnnSolver;
use offloadnn_core::objective::{verify, DotSolution};
use offloadnn_core::scenario::{large_scenario, small_scenario, LoadLevel};
use offloadnn_core::SolutionSummary;
use offloadnn_dnn::config::{Config, PathConfig};
use offloadnn_dnn::models::resnet18;
use offloadnn_dnn::repository::Repository;
use offloadnn_dnn::{GroupId, TensorShape};
use offloadnn_emu::colosseum::{validate, ColosseumConfig};
use offloadnn_profiler::cost::{CostTable, ProfileConfig};
use offloadnn_profiler::training::MIB;
use offloadnn_profiler::{AccuracyModel, TrainingSetup};
use offloadnn_semoran::SemORanSolver;

fn check(name: &str, ok: bool, detail: String) {
    println!("[{}] {name}: {detail}", if ok { "PASS" } else { "WARN" });
}

fn main() {
    println!("OffloaDNN reproduction: paper-vs-measured summary\n");

    // ---------- Fig. 2 ----------
    let acc = AccuracyModel::reference();
    let epoch_to = |cfg: Config, target: f64| (1..=400).find(|&e| acc.curve(cfg, e) >= target).unwrap_or(400);
    check(
        "Fig2L shared configs converge faster",
        epoch_to(Config::B, 0.78) < 60 && epoch_to(Config::A, 0.78) > 150,
        format!(
            "epochs to ~80%: A={}, B={}, C={} (paper: A>200, B/C fast)",
            epoch_to(Config::A, 0.78),
            epoch_to(Config::B, 0.78),
            epoch_to(Config::C, 0.78)
        ),
    );
    check(
        "Fig2L baseline best after 250 epochs",
        Config::ALL.iter().all(|&c| acc.curve(Config::A, 250) >= acc.curve(c, 250)),
        format!("A@250 = {:.3}", acc.curve(Config::A, 250)),
    );

    let setup = TrainingSetup::reference();
    let mut repo = Repository::new();
    let model = repo.add_model(resnet18(60, 1000, TensorShape::new(3, 224, 224)));
    let peak = |cfg: Config, repo: &mut Repository| -> f64 {
        let p =
            repo.instantiate_path(model, GroupId(0), PathConfig { config: cfg, pruned: false }, 0.8).unwrap();
        let blocks: Vec<_> = p.blocks.iter().map(|&b| repo.block(b)).collect::<Vec<_>>();
        setup.peak_training_bytes(&blocks) / MIB
    };
    let (ma, mb) = (peak(Config::A, &mut repo), peak(Config::B, &mut repo));
    check(
        "Fig2R training memory ratio",
        (1.5..2.6).contains(&(ma / mb)),
        format!("A={ma:.0} MiB, B={mb:.0} MiB, ratio {:.1}x (paper ~1.8x)", ma / mb),
    );

    // ---------- Fig. 3 ----------
    let paths = repo.all_paths(model, GroupId(0), 0.8).unwrap();
    let table = CostTable::profile(&repo, &ProfileConfig::reference());
    let t_of = |cfg: Config, pruned: bool| -> f64 {
        let p = paths.iter().find(|p| p.config == PathConfig { config: cfg, pruned }).unwrap();
        table.path_compute_seconds(p) * 1e3
    };
    check(
        "Fig3L pruned compute-time ordering",
        t_of(Config::B, true) > t_of(Config::C, true)
            && t_of(Config::C, true) > t_of(Config::D, true)
            && t_of(Config::D, true) > t_of(Config::E, true)
            && t_of(Config::E, true) >= t_of(Config::A, true),
        format!(
            "pruned times [ms]: B={:.1} C={:.1} D={:.1} E={:.1} A={:.1} (paper: B slowest, A fastest)",
            t_of(Config::B, true),
            t_of(Config::C, true),
            t_of(Config::D, true),
            t_of(Config::E, true),
            t_of(Config::A, true)
        ),
    );
    check(
        "Fig3L full ResNet-18 latency scale",
        (5.0..12.0).contains(&t_of(Config::A, false)),
        format!("{:.1} ms unpruned (paper axis: 0-10 ms)", t_of(Config::A, false)),
    );

    // ---------- Figs. 6-8 (small scale) ----------
    let mut worst_gap = 0.0f64;
    let mut runtime_ratio_t5 = 0.0;
    for t in 1..=5 {
        let s = small_scenario(t);
        let h = OffloadnnSolver::new().solve(&s.instance).unwrap();
        let o = ExactSolver::new().solve(&s.instance).unwrap();
        assert!(verify(&s.instance, &h).is_empty());
        assert!(verify(&s.instance, &o).is_empty());
        worst_gap = worst_gap.max(h.cost.total() / o.cost.total() - 1.0);
        if t == 5 {
            runtime_ratio_t5 = o.solve_seconds / h.solve_seconds.max(1e-12);
            let hs = SolutionSummary::of(&s.instance, &h);
            let os = SolutionSummary::of(&s.instance, &o);
            check(
                "Fig8 weighted admission parity",
                (hs.weighted_admission - os.weighted_admission).abs() < 1e-6,
                format!("both {:.2}", hs.weighted_admission),
            );
            check(
                "Fig8 OffloaDNN inference compute <= optimum",
                hs.compute_utilisation <= os.compute_utilisation + 1e-9,
                format!("{:.4} vs {:.4}", hs.compute_utilisation, os.compute_utilisation),
            );
            check(
                "Fig8 OffloaDNN training >= optimum (slightly)",
                hs.training_utilisation >= os.training_utilisation - 1e-9,
                format!("{:.4} vs {:.4}", hs.training_utilisation, os.training_utilisation),
            );
        }
    }
    check(
        "Fig7 heuristic matches optimum closely",
        worst_gap < 0.05,
        format!("worst cost gap {:.1}% (paper: negligible)", worst_gap * 100.0),
    );
    check(
        "Fig6 runtime separation at T=5",
        runtime_ratio_t5 > 10.0,
        format!("optimum/OffloaDNN runtime ratio {runtime_ratio_t5:.0}x (paper: >10x)"),
    );

    // ---------- Figs. 9-10 (large scale) ----------
    let mut off_adm = Vec::new();
    let mut sem_adm = Vec::new();
    let (mut off_mem, mut sem_mem, mut off_comp, mut sem_comp) = (vec![], vec![], vec![], vec![]);
    for load in LoadLevel::ALL {
        let s = large_scenario(load);
        let off = OffloadnnSolver::new().solve(&s.instance).unwrap();
        assert!(verify(&s.instance, &off).is_empty());
        let osum = SolutionSummary::of(&s.instance, &off);
        let sem = SemORanSolver::new().solve(&s.instance).unwrap();
        check(
            &format!("Fig10 OffloaDNN > SEM-O-RAN weighted admission ({})", load.name()),
            osum.weighted_admission > sem.value,
            format!("{:.2} vs {:.2}", osum.weighted_admission, sem.value),
        );
        off_adm.push(off.admitted_tasks() as f64);
        sem_adm.push(sem.admitted_tasks() as f64);
        off_mem.push(osum.memory_utilisation);
        sem_mem.push(sem.memory_used / s.instance.budgets.memory_bytes);
        off_comp.push(osum.compute_utilisation);
        sem_comp.push(sem.compute_used / s.instance.budgets.compute_seconds);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    check(
        "Fig9/10 more admitted tasks",
        avg(&off_adm) > avg(&sem_adm),
        format!(
            "OffloaDNN {:?} vs SEM-O-RAN {:?}: +{} (paper: +26.9%)",
            off_adm,
            sem_adm,
            pct((avg(&off_adm) - avg(&sem_adm)) / avg(&sem_adm))
        ),
    );
    check(
        "Fig10 memory saving",
        saving(avg(&off_mem), avg(&sem_mem)) > 0.5,
        format!("{} (paper: 82.5%)", pct(saving(avg(&off_mem), avg(&sem_mem)))),
    );
    check(
        "Fig10 inference compute saving",
        saving(avg(&off_comp), avg(&sem_comp)) > 0.5,
        format!("{} (paper: 77.3%)", pct(saving(avg(&off_comp), avg(&sem_comp)))),
    );

    // ---------- Fig. 11 (Colosseum validation) ----------
    let s = small_scenario(5);
    let sol = OffloadnnSolver::new().solve(&s.instance).unwrap();
    let report = validate(&s.instance, &sol, &ColosseumConfig::reference()).unwrap();
    let all_within = (0..5).all(|t| {
        sol.admission[t] == 0.0
            || report.mean_latency(t).map(|m| m <= s.instance.tasks[t].max_latency).unwrap_or(false)
    });
    check(
        "Fig11 deployed latencies within targets",
        all_within,
        (0..5)
            .map(|t| {
                format!(
                    "t{}: {:.2}/{:.1}s",
                    t + 1,
                    report.mean_latency(t).unwrap_or(0.0),
                    s.instance.tasks[t].max_latency
                )
            })
            .collect::<Vec<_>>()
            .join(", "),
    );

    // ---------- extensions ----------
    {
        use offloadnn_core::multi::{solve as multi_solve, split_edges};
        use offloadnn_core::scenario::quantized_small_scenario;

        let q = quantized_small_scenario(5);
        let qsol = OffloadnnSolver::new().solve(&q.instance).unwrap();
        let base = small_scenario(5);
        let bsol = OffloadnnSolver::new().solve(&base.instance).unwrap();
        let qm = SolutionSummary::of(&q.instance, &qsol).memory_utilisation;
        let bm = SolutionSummary::of(&base.instance, &bsol).memory_utilisation;
        check("Ext: INT8 variants shrink the deployment", qm < bm, format!("memory {qm:.3} vs {bm:.3} of M"));

        let mut tight = small_scenario(5).instance;
        tight.budgets.memory_bytes = 1.6e9;
        let whole = multi_solve(&split_edges(&tight, 1)).unwrap();
        let quarters = multi_solve(&split_edges(&tight, 4)).unwrap();
        check(
            "Ext: multi-edge fragmentation never helps",
            quarters.weighted_admission(&split_edges(&tight, 4))
                <= whole.weighted_admission(&split_edges(&tight, 1)) + 1e-9,
            format!(
                "1 edge {:.2} vs 4 edges {:.2} weighted admission",
                whole.weighted_admission(&split_edges(&tight, 1)),
                quarters.weighted_admission(&split_edges(&tight, 4))
            ),
        );

        use offloadnn_emu::colosseum::deployments;
        use offloadnn_emu::energy::DeviceEnergyModel;
        let cfg = ColosseumConfig::reference();
        let deps = deployments(&s.instance, &sol, &cfg);
        let device = DeviceEnergyModel::smartphone();
        let factor = device.saving_factor(&deps[0], 3_600_000_000);
        check(
            "Ext: offloading saves device energy",
            factor > 2.0,
            format!("{factor:.1}x vs local ResNet-18 execution (the paper's motivation)"),
        );
    }

    // ---------- sanity: rejected baseline ----------
    let s1 = small_scenario(1);
    let r = DotSolution::rejected(&s1.instance);
    check("rejected baseline feasible", verify(&s1.instance, &r).is_empty(), "trivially".into());

    println!("\nDone. WARN lines indicate shape deviations documented in EXPERIMENTS.md.");
}

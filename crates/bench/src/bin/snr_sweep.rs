//! Extension experiment: heterogeneous channel qualities. The small-scale
//! scenario re-run with per-task SNRs and the 3GPP CQI rate table —
//! exercising the `B(sigma_tau)` dimension of the DOT formulation that
//! Table IV pins to a constant.

use offloadnn_bench::print_table;
use offloadnn_core::heuristic::OffloadnnSolver;
use offloadnn_core::objective::verify;
use offloadnn_core::scenario::heterogeneous_snr_scenario;
use offloadnn_core::SolutionSummary;

fn main() {
    let s = heterogeneous_snr_scenario(5);
    let sol = OffloadnnSolver::new().solve(&s.instance).unwrap();
    assert!(verify(&s.instance, &sol).is_empty());

    let mut rows = Vec::new();
    for (t, task) in s.instance.tasks.iter().enumerate() {
        let (label, proc) = match sol.choices[t] {
            Some(o) => {
                let opt = &s.instance.options[t][o];
                (opt.label.clone(), opt.proc_seconds * 1e3)
            }
            None => ("rejected".into(), 0.0),
        };
        rows.push(vec![
            task.name.clone(),
            format!("{}", task.snr),
            format!("{:.0} kbit/s", s.instance.bits_per_rb(t) / 1e3),
            format!("{:.2}", sol.admission[t]),
            format!("{:.1}", sol.rbs[t]),
            format!("{:.1}", proc),
            label,
        ]);
    }
    print_table(
        "Heterogeneous SNR (CQI rate table): per-task allocations",
        &["task", "SNR", "per-RB rate", "z", "RBs", "proc [ms]", "path"],
        &rows,
    );
    println!("\nsummary: {}", SolutionSummary::of(&s.instance, &sol).row());
    println!("Low-SNR devices pay for their channel in RBs: the same latency bound costs the 2 dB task\nseveral times the slice of the 14 dB task.");
}

//! Shared helpers for the benchmark harness: series/table formatting used
//! by the `fig*` binaries that regenerate the paper's figures.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Prints a named data series as aligned columns.
pub fn print_series(title: &str, x_label: &str, xs: &[String], series: &[(&str, Vec<f64>)]) {
    println!("\n== {title} ==");
    print!("{x_label:>14}");
    for (name, _) in series {
        print!(" {name:>14}");
    }
    println!();
    for (i, x) in xs.iter().enumerate() {
        print!("{x:>14}");
        for (_, ys) in series {
            if let Some(y) = ys.get(i) {
                print!(" {y:>14.4}");
            } else {
                print!(" {:>14}", "-");
            }
        }
        println!();
    }
}

/// Prints a markdown-style table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    println!("| {} |", header.join(" | "));
    println!("|{}|", header.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Formats a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Relative saving of `ours` against `baseline` (positive = we use less).
pub fn saving(ours: f64, baseline: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        1.0 - ours / baseline
    }
}

/// Renders series as an ASCII line chart (rows = value buckets, columns =
/// x positions; each series gets a distinct glyph).
pub fn ascii_chart(title: &str, series: &[(&str, &[f64])], height: usize) -> String {
    use std::fmt::Write as _;
    let glyphs = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let n = series.iter().map(|(_, ys)| ys.len()).max().unwrap_or(0);
    if n == 0 {
        return out;
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, ys) in series {
        for &y in *ys {
            lo = lo.min(y);
            hi = hi.max(y);
        }
    }
    if !lo.is_finite() || hi <= lo {
        hi = lo + 1.0;
    }
    let h = height.max(2);
    let mut grid = vec![vec![' '; n]; h];
    for (si, (_, ys)) in series.iter().enumerate() {
        for (x, &y) in ys.iter().enumerate() {
            let row = ((y - lo) / (hi - lo) * (h - 1) as f64).round() as usize;
            let row = h - 1 - row.min(h - 1);
            grid[row][x] = glyphs[si % glyphs.len()];
        }
    }
    for (i, row) in grid.iter().enumerate() {
        let axis = hi - (hi - lo) * i as f64 / (h - 1) as f64;
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{axis:>10.3} |{line}");
    }
    let _ = writeln!(out, "{:>10} +{}", "", "-".repeat(n));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", glyphs[i % glyphs.len()], name))
        .collect();
    let _ = writeln!(out, "{:>12}{}", "", legend.join("   "));
    out
}

/// Writes a CSV file under `target/experiments/`, returning the path.
/// Figure binaries call this so the series can be re-plotted elsewhere.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("target").join("experiments");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut body = String::new();
    body.push_str(&header.join(","));
    body.push('\n');
    for row in rows {
        body.push_str(&row.join(","));
        body.push('\n');
    }
    std::fs::write(&path, body)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_chart_shape() {
        let a = [1.0, 2.0, 3.0, 2.0];
        let b = [3.0, 2.0, 1.0, 2.0];
        let chart = ascii_chart("t", &[("up", &a), ("down", &b)], 5);
        assert!(chart.contains("* up"));
        assert!(chart.contains("o down"));
        // 5 grid rows + title + axis + legend.
        assert_eq!(chart.lines().count(), 8);
        // Extremes land on the top and bottom rows.
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[1].contains('*') || lines[1].contains('o'));
    }

    #[test]
    fn ascii_chart_handles_flat_and_empty() {
        let flat = [2.0, 2.0];
        let c = ascii_chart("flat", &[("f", &flat)], 3);
        assert!(c.contains("flat"));
        let e = ascii_chart("empty", &[("e", &[][..])], 3);
        assert_eq!(e.lines().count(), 1);
    }

    #[test]
    fn csv_roundtrip() {
        let p = write_csv(
            "unit_test",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let body = std::fs::read_to_string(p).unwrap();
        assert_eq!(body, "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn saving_math() {
        assert!((saving(0.2, 0.8) - 0.75).abs() < 1e-12);
        assert_eq!(saving(1.0, 0.0), 0.0);
        assert_eq!(pct(0.269), "26.9%");
    }
}

//! Ablations of OffloaDNN's design choices: first-branch rule vs beam
//! search, and the greedy vs optimal inner allocator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use offloadnn_core::heuristic::{AllocatorKind, OffloadnnSolver};
use offloadnn_core::scenario::{large_scenario, LoadLevel};
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let s = large_scenario(LoadLevel::High);
    let mut group = c.benchmark_group("ablation");
    group.sample_size(20);
    for k in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("beam_width", k), &k, |b, &k| {
            b.iter(|| OffloadnnSolver::with_beam(k).solve(black_box(&s.instance)).unwrap())
        });
    }
    for (name, alloc) in
        [("greedy", AllocatorKind::GreedyPriority), ("ascent", AllocatorKind::CoordinateAscent)]
    {
        let solver = OffloadnnSolver { allocator: alloc, ..OffloadnnSolver::new() };
        group.bench_with_input(BenchmarkId::new("allocator", name), &name, |b, _| {
            b.iter(|| solver.solve(black_box(&s.instance)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

//! Wire-codec throughput: how fast do admission frames encode and
//! decode? Submit frames dominate the ingress path (a whole task plus
//! its candidate paths per frame), outcome frames the egress; the
//! streaming case measures the reassembly loop a connection reader runs
//! over a coalesced burst of frames.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use offloadnn_core::scenario::small_scenario;
use offloadnn_net::codec::{self, Frame, OutcomeResponse, SubmitRequest};
use offloadnn_serve::Outcome;
use std::hint::black_box;

fn submit_frame(ues: usize) -> Frame {
    let s = small_scenario(ues);
    Frame::Submit(SubmitRequest {
        request_id: 42,
        deadline_us: 2_000_000,
        task: s.instance.tasks[0].clone(),
        options: s.instance.options[0].clone(),
    })
}

fn outcome_frame() -> Frame {
    Frame::Outcome(OutcomeResponse {
        request_id: 42,
        outcome: Outcome::Admitted { admission: 0.75, rbs: 3.5, shard: 2 },
    })
}

fn bench_net_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_codec");

    for ues in [2usize, 5] {
        let frame = submit_frame(ues);
        let bytes = codec::encode(&frame);
        group.bench_with_input(BenchmarkId::new("encode_submit", ues), &frame, |b, frame| {
            b.iter(|| codec::encode(black_box(frame)))
        });
        group.bench_with_input(BenchmarkId::new("decode_submit", ues), &bytes, |b, bytes| {
            b.iter(|| codec::decode_exact(black_box(bytes)).expect("valid frame"))
        });
    }

    {
        let frame = outcome_frame();
        let bytes = codec::encode(&frame);
        group.bench_function("encode_outcome", |b| b.iter(|| codec::encode(black_box(&frame))));
        group.bench_function("decode_outcome", |b| {
            b.iter(|| codec::decode_exact(black_box(&bytes)).expect("valid frame"))
        });
    }

    // A reader's reassembly loop over one coalesced 64-frame burst.
    {
        let burst: Vec<u8> = (0..64u64)
            .flat_map(|id| {
                codec::encode(&Frame::Outcome(OutcomeResponse {
                    request_id: id + 1,
                    outcome: Outcome::Rejected { shard: id as usize % 4 },
                }))
            })
            .collect();
        group.bench_function("decode_stream_64", |b| {
            b.iter(|| {
                let mut rest: &[u8] = black_box(&burst);
                let mut frames = 0u32;
                while let Ok(Some((frame, consumed))) = codec::decode(rest) {
                    black_box(frame);
                    rest = &rest[consumed..];
                    frames += 1;
                }
                assert_eq!(frames, 64);
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_net_codec);
criterion_main!(benches);

//! Fig. 6's measurement as a Criterion bench: OffloaDNN vs the exact
//! optimum on the small-scale scenario as T grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use offloadnn_core::exact::ExactSolver;
use offloadnn_core::heuristic::OffloadnnSolver;
use offloadnn_core::scenario::small_scenario;
use std::hint::black_box;

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_runtime");
    for t in 1..=5usize {
        let s = small_scenario(t);
        group.bench_with_input(BenchmarkId::new("offloadnn", t), &t, |b, _| {
            b.iter(|| OffloadnnSolver::new().solve(black_box(&s.instance)).unwrap())
        });
        // The exhaustive optimum explodes with T; keep sampling cheap.
        if t <= 4 {
            group.sample_size(10);
            group.bench_with_input(BenchmarkId::new("optimum", t), &t, |b, _| {
                b.iter(|| ExactSolver::new().solve(black_box(&s.instance)).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);

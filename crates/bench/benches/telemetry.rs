//! Overhead of the telemetry primitives on a hot path: what one span,
//! one counter bump and one histogram record cost per call, and what the
//! same call sites cost with telemetry switched off (the "one branch"
//! claim in the crate docs — numbers quoted in DESIGN.md).

use criterion::{criterion_group, criterion_main, Criterion};
use offloadnn_telemetry::{set_enabled, Counter, Histogram};
use std::hint::black_box;
use std::time::Duration;

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry");

    set_enabled(true);
    group.bench_function("span_enabled", |b| {
        b.iter(|| {
            let span = offloadnn_telemetry::span!("bench.span");
            black_box(&span);
        })
    });
    group.bench_function("count_enabled", |b| b.iter(|| offloadnn_telemetry::count!("bench.count")));

    set_enabled(false);
    group.bench_function("span_off", |b| {
        b.iter(|| {
            let span = offloadnn_telemetry::span!("bench.span");
            black_box(&span);
        })
    });
    group.bench_function("count_off", |b| b.iter(|| offloadnn_telemetry::count!("bench.count")));
    set_enabled(true);

    // The bare primitives, outside the macro gating: what functional
    // accounting (serve's conservation counters) pays unconditionally.
    let counter = Counter::new();
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    let hist = Histogram::new();
    group.bench_function("histogram_record", |b| {
        b.iter(|| hist.record(black_box(Duration::from_micros(137))))
    });

    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);

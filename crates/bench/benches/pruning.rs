//! Structured pruning throughput: dependency analysis + rebuild of
//! ResNet-18 stages at several ratios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use offloadnn_dnn::models::resnet18;
use offloadnn_dnn::prune::{prune, PruneSpec};
use offloadnn_dnn::TensorShape;
use std::hint::black_box;

fn bench_prune(c: &mut Criterion) {
    let model = resnet18(60, 1000, TensorShape::new(3, 224, 224));
    let mut group = c.benchmark_group("pruning");
    for ratio in [0.5f64, 0.8] {
        group.bench_with_input(BenchmarkId::new("stage4", format!("{ratio}")), &ratio, |b, &r| {
            b.iter(|| prune(black_box(&model.blocks[3]), PruneSpec::suffix_head(r)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("whole_model", format!("{ratio}")), &ratio, |b, &r| {
            b.iter(|| {
                for (i, blk) in model.blocks.iter().enumerate() {
                    let spec = if i == 0 { PruneSpec::suffix_head(r) } else { PruneSpec::full(r) };
                    prune(black_box(blk), spec).unwrap();
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prune);
criterion_main!(benches);

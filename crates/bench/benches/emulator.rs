//! Discrete-event emulator throughput: the Fig. 11 deployment over a 20 s
//! horizon.

use criterion::{criterion_group, criterion_main, Criterion};
use offloadnn_core::heuristic::OffloadnnSolver;
use offloadnn_core::scenario::small_scenario;
use offloadnn_emu::colosseum::{deployments, ColosseumConfig};
use offloadnn_emu::sim::run;
use std::hint::black_box;

fn bench_emulator(c: &mut Criterion) {
    let s = small_scenario(5);
    let sol = OffloadnnSolver::new().solve(&s.instance).unwrap();
    let cfg = ColosseumConfig::reference();
    let deps = deployments(&s.instance, &sol, &cfg);
    c.bench_function("emulate_20s_5tasks", |b| {
        b.iter(|| run(black_box(&deps), black_box(&cfg.emulator)).unwrap())
    });
}

criterion_group!(benches, bench_emulator);
criterion_main!(benches);

//! Plan-cache hot paths under contention: a lookup that hits, a
//! miss-then-insert (with eviction churn once the arena is full), and
//! the single-flight path where every thread asks for the same missing
//! key at once — swept over 1, 8 and 64 threads hammering one shared
//! cache, since that is how the serve shards and the gateway actually
//! use it. One measured sample is a fixed batch of operations split
//! across the thread count, so samples are comparable across sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use offloadnn_plancache::{PlanCache, PlanCacheConfig, PlanKey, ShapeFingerprint};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// Operations per measured sample, split evenly across the threads.
const OPS: u64 = 8192;

/// Well-spread synthetic keys (golden-ratio multiply, like the shard
/// router's own mixing).
fn key(i: u64) -> PlanKey {
    PlanKey {
        shape: ShapeFingerprint(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        bucket: (i % 7) as u16,
        generation: 0,
    }
}

/// Runs `op(thread, step)` for `OPS` total iterations split across
/// `threads`; every thread walks the same `step` range `0..OPS/threads`
/// so callers can choose between disjoint keys (`thread * per + step`)
/// and deliberately colliding ones (`step` alone).
fn hammer(threads: u64, op: &(impl Fn(u64, u64) + Sync)) {
    let per = OPS / threads;
    if threads == 1 {
        for step in 0..per {
            op(0, step);
        }
        return;
    }
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                for step in 0..per {
                    op(t, step);
                }
            });
        }
    });
}

fn bench_plancache(c: &mut Criterion) {
    let mut group = c.benchmark_group("plancache");
    group.sample_size(20);

    for threads in [1u64, 8, 64] {
        // Hit path: a resident working set smaller than capacity, so
        // every lookup lands (and flips the CLOCK reference bit).
        let cache: PlanCache<u64> = PlanCache::new(PlanCacheConfig::default());
        let resident = (cache.config().capacity as u64) / 2;
        for i in 0..resident {
            cache.insert(key(i), i, false);
        }
        group.bench_with_input(BenchmarkId::new("hit", threads), &threads, |b, &threads| {
            b.iter(|| {
                let per = OPS / threads;
                let cache = &cache;
                hammer(threads, &|t, step| {
                    black_box(cache.lookup(black_box(&key((t * per + step) % resident))));
                });
            })
        });

        // Miss path: every lookup is a fresh key, followed by the
        // insert a shard would do after solving — past capacity this is
        // also the CLOCK eviction path.
        let cache: PlanCache<u64> = PlanCache::new(PlanCacheConfig::default());
        let fresh = AtomicU64::new(1 << 32);
        group.bench_with_input(BenchmarkId::new("miss_insert", threads), &threads, |b, &threads| {
            b.iter(|| {
                let base = fresh.fetch_add(OPS, Ordering::Relaxed);
                let per = OPS / threads;
                let cache = &cache;
                hammer(threads, &|t, step| {
                    let k = key(base + t * per + step);
                    black_box(cache.lookup(black_box(&k)));
                    cache.insert(k, step, false);
                });
            })
        });

        // Single-flight path: all threads ask for the same missing key
        // in lockstep rounds — one leader computes, the rest block on
        // the flight — measuring the dedup coordination itself.
        let cache: PlanCache<u64> = PlanCache::new(PlanCacheConfig::default());
        let round = AtomicU64::new(1 << 48);
        group.bench_with_input(BenchmarkId::new("single_flight", threads), &threads, |b, &threads| {
            b.iter(|| {
                let base = round.fetch_add(OPS, Ordering::Relaxed);
                let cache = &cache;
                hammer(threads, &|_, step| {
                    // Every thread asks for the same `step` key, so each
                    // wave is one leader plus `threads - 1` followers.
                    let k = key(base + step);
                    black_box(cache.get_or_compute(k, || (step, false)));
                });
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_plancache);
criterion_main!(benches);

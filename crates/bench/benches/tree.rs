//! Weighted-tree construction and the full heuristic on the large-scale
//! scenario (125 DNNs x 10 paths x 4 quality levels per task, T = 20).

use criterion::{criterion_group, criterion_main, Criterion};
use offloadnn_core::heuristic::OffloadnnSolver;
use offloadnn_core::scenario::{large_scenario, LoadLevel};
use offloadnn_core::tree::WeightedTree;
use std::hint::black_box;

fn bench_tree(c: &mut Criterion) {
    let s = large_scenario(LoadLevel::Medium);
    let mut group = c.benchmark_group("tree");
    group.sample_size(20);
    group.bench_function("build_large", |b| b.iter(|| WeightedTree::build(black_box(&s.instance))));
    group.bench_function("solve_large", |b| {
        b.iter(|| OffloadnnSolver::new().solve(black_box(&s.instance)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_tree);
criterion_main!(benches);

//! Throughput of the sharded admission service: one closed-loop load
//! run per iteration, swept over the shard count (does partitioning the
//! budgets across more controllers raise verdict throughput?) and over
//! the batch size (how much does amortising the DOT solve help?).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use offloadnn_core::scenario::small_scenario;
use offloadnn_radio::ArrivalProcess;
use offloadnn_serve::{loadgen, LoadgenConfig, ServiceConfig};
use std::hint::black_box;
use std::time::Duration;

fn run_once(shards: usize, batch_max: usize, requests: u64) -> u64 {
    let scenario = small_scenario(5);
    let service_config = ServiceConfig {
        shards,
        batch_max,
        batch_window: Duration::from_micros(200),
        ..ServiceConfig::default()
    };
    let cfg = LoadgenConfig {
        requests,
        process: ArrivalProcess::Poisson { rate_hz: 50_000.0 },
        seed: 7,
        max_active: 32,
        time_scale: 0.0,
        ..LoadgenConfig::default()
    };
    let report = loadgen::run(service_config, cfg, &scenario.instance);
    assert!(report.is_conserved(), "bench run lost a request:\n{report}");
    report.tally.resolved()
}

fn bench_serve_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            b.iter(|| run_once(black_box(shards), 64, 2_000))
        });
    }
    for batch_max in [1usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("batch_max", batch_max), &batch_max, |b, &batch_max| {
            b.iter(|| run_once(4, black_box(batch_max), 2_000))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);

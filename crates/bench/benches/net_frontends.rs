//! Threaded vs reactor ingress, same wire protocol and service behind
//! both: one closed-loop round of pipelined submits per iteration,
//! swept over the connection count. At 4 connections the two frontends
//! should be equivalent (the reactor's acceptance bar); at 256 the
//! threaded frontend pays one OS thread per socket while the reactor
//! multiplexes them onto its fixed pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use offloadnn_core::scenario::small_scenario;
use offloadnn_core::task::TaskId;
use offloadnn_net::{AnyServer, Client, ClientConfig, Frontend, NetConfig};
use offloadnn_serve::ServiceConfig;
use std::hint::black_box;
use std::time::Duration;

/// Submits per iteration, split evenly across the connections.
const SUBMITS_PER_ROUND: usize = 1024;

fn run_rounds(frontend: Frontend, clients: usize, rounds: usize) -> u64 {
    let scenario = small_scenario(5);
    let service_config = ServiceConfig {
        shards: 2,
        batch_max: 64,
        batch_window: Duration::from_micros(200),
        ..ServiceConfig::default()
    };
    let net_config = NetConfig {
        max_connections: NetConfig::default().max_connections.max(clients + 8),
        ..NetConfig::default()
    };
    let server = AnyServer::start(frontend, ("127.0.0.1", 0), net_config, service_config, &scenario.instance)
        .expect("start server");
    let conns: Vec<Client> = (0..clients)
        .map(|_| Client::connect(server.local_addr(), ClientConfig::default()).expect("connect"))
        .collect();

    let protos: Vec<_> =
        scenario.instance.tasks.iter().cloned().zip(scenario.instance.options.iter().cloned()).collect();
    let mut next_id = 0u32;
    let mut resolved = 0u64;
    for _ in 0..rounds {
        // Pipeline: fan the round out across every connection, then
        // collect all verdicts.
        let pending: Vec<_> = (0..SUBMITS_PER_ROUND)
            .map(|i| {
                let proto = &protos[i % protos.len()];
                let mut task = proto.0.clone();
                task.id = TaskId(next_id);
                next_id = next_id.wrapping_add(1);
                conns[i % clients].submit(task, proto.1.clone(), None).expect("submit")
            })
            .collect();
        for p in pending {
            p.wait_timeout(Duration::from_secs(30)).expect("verdict");
            resolved += 1;
        }
    }

    for conn in conns {
        conn.close();
    }
    let report = server.shutdown();
    assert!(report.metrics.is_conserved(), "bench run lost a request");
    resolved
}

fn bench_net_frontends(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_frontends");
    group.sample_size(10);
    for frontend in [Frontend::Threads, Frontend::Reactor] {
        for clients in [4usize, 256] {
            let id = BenchmarkId::new(frontend.to_string(), clients);
            group.bench_with_input(id, &clients, |b, &clients| {
                b.iter(|| run_rounds(black_box(frontend), clients, 1))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_net_frontends);
criterion_main!(benches);

//! Gateway routing hot path: one weighted-rendezvous decision per
//! submit, so the per-key cost bounds the gateway's ingress rate. The
//! score is O(nodes) per key (one hash + one log each), so `route`
//! should scale linearly with pool size; `rank` additionally sorts and
//! allocates, which is why the data path only uses it for failover
//! analysis, never per submit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use offloadnn_gateway::router::{self, Candidate};
use std::hint::black_box;

/// A pool shaped like a live cluster: seeds from synthetic addresses,
/// weights spread as if nodes carried different load.
fn pool(nodes: usize) -> Vec<Candidate> {
    (0..nodes)
        .map(|i| Candidate {
            index: i,
            seed: router::node_seed(&format!("10.0.{}.{}:4000", i / 256, i % 256)),
            weight: 1.0 / (1.0 + (i % 7) as f64),
        })
        .collect()
}

fn bench_gateway_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("gateway_routing");

    for nodes in [3usize, 16, 64] {
        let candidates = pool(nodes);
        group.bench_with_input(BenchmarkId::new("route", nodes), &candidates, |b, candidates| {
            let mut key = 0u64;
            b.iter(|| {
                key = key.wrapping_add(1);
                router::route(black_box(key), black_box(candidates))
            })
        });
        group.bench_with_input(BenchmarkId::new("rank", nodes), &candidates, |b, candidates| {
            let mut key = 0u64;
            b.iter(|| {
                key = key.wrapping_add(1);
                router::rank(black_box(key), black_box(candidates))
            })
        });
    }

    // The failover shape: one node excluded, route over the survivors —
    // what the data path actually pays while a node sits ejected.
    for nodes in [3usize, 16, 64] {
        let survivors: Vec<Candidate> = pool(nodes).into_iter().filter(|c| c.index != nodes / 2).collect();
        group.bench_with_input(BenchmarkId::new("route_one_ejected", nodes), &survivors, |b, survivors| {
            let mut key = 0u64;
            b.iter(|| {
                key = key.wrapping_add(1);
                router::route(black_box(key), black_box(survivors))
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_gateway_routing);
criterion_main!(benches);

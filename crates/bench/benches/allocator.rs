//! Inner allocation problem: greedy vs coordinate ascent at growing task
//! counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use offloadnn_core::alloc::{coordinate_ascent, greedy, AllocSettings, AllocTask, Order};
use std::hint::black_box;

fn tasks(n: usize) -> Vec<AllocTask> {
    (0..n)
        .map(|i| {
            let x = (i as f64 * 0.37).fract();
            AllocTask {
                priority: 0.2 + 0.8 * x,
                lambda: 2.0 + 6.0 * x,
                beta: 350e3,
                bits_per_rb: 0.35e6,
                r_lat: 1.5 + 4.0 * x,
                proc_seconds: 0.002 + 0.01 * x,
            }
        })
        .collect()
}

fn bench_alloc(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocator");
    for n in [5usize, 20, 100] {
        let ts = tasks(n);
        let s = AllocSettings { alpha: 0.5, rbs: n as f64 * 3.0, compute: n as f64 * 0.02 };
        group.bench_with_input(BenchmarkId::new("greedy_priority", n), &n, |b, _| {
            b.iter(|| greedy(black_box(&ts), black_box(&s), Order::Priority))
        });
        group.bench_with_input(BenchmarkId::new("coordinate_ascent", n), &n, |b, _| {
            b.iter(|| coordinate_ascent(black_box(&ts), black_box(&s)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_alloc);
criterion_main!(benches);

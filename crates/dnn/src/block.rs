//! DNN layer-blocks: the unit of sharing, fine-tuning and pruning.
//!
//! A *block* `s^d` in the paper is one coarse segment of a DNN (one of the
//! four stages of [`crate::models::SegmentedModel`]) in a specific
//! *variant*: pretrained-and-frozen (shareable by every task), fine-tuned
//! for a task group, or fine-tuned and structurally pruned. Identical
//! variants are interned to a single [`BlockId`] so that memory and training
//! cost are naturally counted once when several tasks share a block.

use crate::graph::LayerGraph;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A group of tasks that share fine-tuned weights (e.g. "grocery items",
/// "musical instruments"). Fine-tuned blocks are shareable *within* a group
/// but never across groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GroupId(pub u32);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Identifier of a model (architecture + width + input resolution) inside a
/// [`crate::repository::Repository`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ModelId(pub u32);

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Interned identifier of a block variant. Two tasks whose paths contain the
/// same `BlockId` share that block's memory and training cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The training/pruning provenance of a block, part of its identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockVariant {
    /// Pretrained on the base dataset and frozen. Shared by *all* groups;
    /// zero training cost.
    Base,
    /// Fine-tuned (or trained from scratch) for a task group.
    FineTuned {
        /// Owning task group.
        group: GroupId,
        /// Trained from random init (CONFIG A) rather than from the
        /// pretrained base; affects training cost and the learning curve.
        from_scratch: bool,
    },
    /// Fine-tuned then structurally pruned.
    Pruned {
        /// Owning task group.
        group: GroupId,
        /// Prune ratio in permille.
        ratio_permille: u32,
        /// Trained from random init before pruning.
        from_scratch: bool,
        /// Whether the block's *input* interface is pruned too (true when
        /// the preceding block of the path is pruned with the same ratio).
        pruned_input: bool,
    },
    /// The classifier head micro-block (global pooling + fully connected),
    /// always task-group specific.
    Head {
        /// Owning task group.
        group: GroupId,
    },
    /// A pruned classifier head. When `pruned_input` is set, the upstream
    /// stage-4 block is pruned and the head's input is already narrow;
    /// otherwise (CONFIG B-pruned) the head's own input columns are
    /// magnitude-pruned via a channel selection.
    PrunedHead {
        /// Owning task group.
        group: GroupId,
        /// Prune ratio in permille (800 = 80 %).
        ratio_permille: u32,
        /// Whether the feeding stage-4 block is pruned too.
        pruned_input: bool,
    },
}

impl BlockVariant {
    /// Whether this variant requires any training (fine-tuning) at all.
    pub fn is_trainable(&self) -> bool {
        !matches!(self, BlockVariant::Base)
    }

    /// Whether the variant is a classifier-head micro-block.
    pub fn is_head(&self) -> bool {
        matches!(self, BlockVariant::Head { .. } | BlockVariant::PrunedHead { .. })
    }

    /// Whether the variant's feature extractor is frozen (no backward pass
    /// through convolutional features).
    pub fn frozen_features(&self) -> bool {
        matches!(self, BlockVariant::Base | BlockVariant::Head { .. } | BlockVariant::PrunedHead { .. })
    }

    /// The owning group, if the variant is group-specific.
    pub fn group(&self) -> Option<GroupId> {
        match *self {
            BlockVariant::Base => None,
            BlockVariant::Head { group }
            | BlockVariant::PrunedHead { group, .. }
            | BlockVariant::FineTuned { group, .. }
            | BlockVariant::Pruned { group, .. } => Some(group),
        }
    }

    /// Prune ratio applied to this variant, if any.
    pub fn prune_ratio(&self) -> Option<f64> {
        match *self {
            BlockVariant::PrunedHead { ratio_permille, .. } | BlockVariant::Pruned { ratio_permille, .. } => {
                Some(ratio_permille as f64 / 1000.0)
            }
            _ => None,
        }
    }
}

impl fmt::Display for BlockVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BlockVariant::Base => write!(f, "base"),
            BlockVariant::Head { group } => write!(f, "head[{group}]"),
            BlockVariant::PrunedHead { group, ratio_permille, .. } => {
                write!(f, "head-pruned{}[{group}]", ratio_permille)
            }
            BlockVariant::FineTuned { group, from_scratch } => {
                write!(f, "{}[{group}]", if from_scratch { "scratch" } else { "finetuned" })
            }
            BlockVariant::Pruned { group, ratio_permille, .. } => {
                write!(f, "pruned{ratio_permille}[{group}]")
            }
        }
    }
}

/// Numeric precision a block's weights are deployed at. Quantisation is a
/// second compression axis next to pruning (Deep Compression, Han et al.):
/// an INT8 copy of a block is a distinct artifact — it shares nothing with
/// its FP32 sibling at serving time, so precision is part of the identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Precision {
    /// 32-bit floating point (the training precision).
    #[default]
    Fp32,
    /// 8-bit integers (post-training or quantisation-aware).
    Int8,
}

impl Precision {
    /// Bytes per parameter at this precision.
    pub fn bytes_per_param(&self) -> f64 {
        match self {
            Precision::Fp32 => 4.0,
            Precision::Int8 => 1.0,
        }
    }

    /// Relative compute time vs FP32 on hardware with INT8 paths.
    pub fn compute_factor(&self) -> f64 {
        match self {
            Precision::Fp32 => 1.0,
            Precision::Int8 => 0.55,
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Precision::Fp32 => f.write_str("fp32"),
            Precision::Int8 => f.write_str("int8"),
        }
    }
}

/// Full identity of an interned block: same key ⇒ same weights ⇒ shareable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockKey {
    /// Which model the block belongs to.
    pub model: ModelId,
    /// Stage index, `0..NUM_STAGES`.
    pub stage: usize,
    /// Variant (training/pruning provenance).
    pub variant: BlockVariant,
    /// Deployed numeric precision.
    pub precision: Precision,
}

/// Structural metrics of a block, derived once from its graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockMetrics {
    /// All parameters held in memory at inference time.
    pub params: u64,
    /// Parameters that receive gradients during fine-tuning.
    pub trainable_params: u64,
    /// FLOPs per inference sample.
    pub flops: u64,
    /// Sum of activation elements per sample (training-memory model input).
    pub activation_elements: u64,
    /// Largest single activation tensor per sample, in elements.
    pub peak_activation_elements: u64,
    /// Kernel launches per inference sample (latency overhead model input).
    pub kernel_launches: u64,
}

impl BlockMetrics {
    /// Derives metrics from a block graph and its variant.
    pub fn derive(graph: &LayerGraph, variant: &BlockVariant) -> Self {
        let params = graph.params();
        let trainable_params = match variant {
            BlockVariant::Base => 0,
            BlockVariant::Head { .. }
            | BlockVariant::PrunedHead { .. }
            | BlockVariant::FineTuned { .. }
            | BlockVariant::Pruned { .. } => params,
        };
        Self {
            params,
            trainable_params,
            flops: graph.flops(),
            activation_elements: graph.activation_elements(),
            peak_activation_elements: graph.peak_activation_elements(),
            kernel_launches: graph.kernel_launches(),
        }
    }
}

/// An interned block: identity, structure and metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockEntry {
    /// Interned identity.
    pub key: BlockKey,
    /// The block's layer graph.
    pub graph: LayerGraph,
    /// Derived structural metrics.
    pub metrics: BlockMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::resnet18;
    use crate::shape::TensorShape;

    #[test]
    fn variant_predicates() {
        let g = GroupId(3);
        assert!(!BlockVariant::Base.is_trainable());
        assert!(BlockVariant::Head { group: g }.is_trainable());
        assert!(BlockVariant::Base.frozen_features());
        assert!(
            BlockVariant::PrunedHead { group: g, ratio_permille: 800, pruned_input: false }.frozen_features()
        );
        assert!(!BlockVariant::FineTuned { group: g, from_scratch: false }.frozen_features());
        assert_eq!(BlockVariant::Base.group(), None);
        assert_eq!(BlockVariant::FineTuned { group: g, from_scratch: true }.group(), Some(g));
        assert_eq!(
            BlockVariant::Pruned { group: g, ratio_permille: 800, from_scratch: false, pruned_input: true }
                .prune_ratio(),
            Some(0.8)
        );
        assert_eq!(BlockVariant::Base.prune_ratio(), None);
        assert!(BlockVariant::Head { group: g }.is_head());
        assert!(!BlockVariant::Base.is_head());
    }

    #[test]
    fn metrics_trainable_params_by_variant() {
        let m = resnet18(60, 1000, TensorShape::new(3, 224, 224));
        let g = GroupId(0);

        let base = BlockMetrics::derive(&m.blocks[3], &BlockVariant::Base);
        assert_eq!(base.trainable_params, 0);
        assert_eq!(base.params, m.blocks[3].params());

        let head = BlockMetrics::derive(&m.head, &BlockVariant::Head { group: g });
        // Head = 512*60 + 60, all trainable.
        assert_eq!(head.trainable_params, 512 * 60 + 60);
        assert_eq!(head.params, head.trainable_params);

        let ft =
            BlockMetrics::derive(&m.blocks[3], &BlockVariant::FineTuned { group: g, from_scratch: false });
        assert_eq!(ft.trainable_params, ft.params);
    }

    #[test]
    fn display_formats() {
        assert_eq!(GroupId(2).to_string(), "g2");
        assert_eq!(ModelId(5).to_string(), "d5");
        assert_eq!(BlockId(7).to_string(), "s7");
        assert_eq!(BlockVariant::Base.to_string(), "base");
        assert_eq!(
            BlockVariant::FineTuned { group: GroupId(1), from_scratch: true }.to_string(),
            "scratch[g1]"
        );
    }

    #[test]
    fn block_key_equality_drives_sharing() {
        let k1 =
            BlockKey { model: ModelId(0), stage: 1, variant: BlockVariant::Base, precision: Precision::Fp32 };
        let k2 =
            BlockKey { model: ModelId(0), stage: 1, variant: BlockVariant::Base, precision: Precision::Fp32 };
        let k3 = BlockKey {
            model: ModelId(0),
            stage: 1,
            variant: BlockVariant::FineTuned { group: GroupId(0), from_scratch: false },
            precision: Precision::Fp32,
        };
        let k4 = BlockKey { precision: Precision::Int8, ..k1 };
        assert_eq!(k1, k2);
        assert_ne!(k1, k3);
        assert_ne!(k1, k4, "an INT8 copy is a distinct artifact");
        assert_eq!(Precision::Int8.bytes_per_param(), 1.0);
        assert!(Precision::Int8.compute_factor() < 1.0);
        assert_eq!(Precision::default(), Precision::Fp32);
        assert_eq!(Precision::Int8.to_string(), "int8");
    }
}

//! Reference CNN architectures segmented into the paper's "layer-blocks".
//!
//! The paper treats a DNN as a sequence of four coarse blocks (Table IV:
//! "each DNN path is composed of four blocks"): for ResNet-18 these are the
//! four residual stages, with the stem merged into the first block and the
//! classifier head into the last. [`SegmentedModel`] captures exactly that
//! segmentation so the block repository can mix shared / fine-tuned / pruned
//! variants per stage.

mod mobilenet;
mod resnet;

pub use mobilenet::mobilenet_v2;
pub use resnet::{resnet101, resnet18, resnet34, resnet50};

use crate::graph::LayerGraph;
use crate::shape::TensorShape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of coarse layer-blocks every segmented model exposes.
pub const NUM_STAGES: usize = 4;

/// Model architecture family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ModelFamily {
    /// ResNet-18 (two basic blocks per stage).
    ResNet18,
    /// ResNet-34 (3/4/6/3 basic blocks per stage).
    ResNet34,
    /// ResNet-50 (3/4/6/3 bottleneck blocks per stage, 4x expansion).
    ResNet50,
    /// ResNet-101 (3/4/23/3 bottleneck blocks per stage).
    ResNet101,
    /// MobileNetV2 (inverted residual bottlenecks).
    MobileNetV2,
}

impl fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ModelFamily::ResNet18 => "resnet18",
            ModelFamily::ResNet34 => "resnet34",
            ModelFamily::ResNet50 => "resnet50",
            ModelFamily::ResNet101 => "resnet101",
            ModelFamily::MobileNetV2 => "mobilenetv2",
        };
        f.write_str(s)
    }
}

/// A CNN cut into [`NUM_STAGES`] sequential *feature* layer-blocks plus an
/// explicit classifier head micro-block.
///
/// `blocks[i]`'s input shape equals `blocks[i-1]`'s output shape; the head
/// (global pooling + fully connected classifier) is kept separate because
/// it is the one piece that is *always* task-specific: splitting it out
/// lets CONFIG B share all four feature blocks across tasks while paying
/// only a tiny per-task head, exactly the memory picture the paper draws.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentedModel {
    /// Architecture family.
    pub family: ModelFamily,
    /// Width multiplier in permille (1000 = 1.0x); kept integral so model
    /// identity is hashable and exact.
    pub width_permille: u32,
    /// Number of output classes of the classifier head.
    pub num_classes: usize,
    /// Input tensor shape.
    pub input: TensorShape,
    /// The four feature layer-block graphs, in order.
    pub blocks: Vec<LayerGraph>,
    /// The classifier head graph (global pooling + fully connected).
    pub head: LayerGraph,
    /// Feature width entering the classifier (e.g. 512 for ResNet-18).
    pub head_features: usize,
}

impl SegmentedModel {
    /// Total parameters across all feature blocks and the head.
    pub fn params(&self) -> u64 {
        self.blocks.iter().map(LayerGraph::params).sum::<u64>() + self.head.params()
    }

    /// Total FLOPs for one input sample (feature blocks + head).
    pub fn flops(&self) -> u64 {
        self.blocks.iter().map(LayerGraph::flops).sum::<u64>() + self.head.flops()
    }

    /// Width multiplier as a float.
    pub fn width(&self) -> f64 {
        self.width_permille as f64 / 1000.0
    }

    /// Checks that consecutive blocks (and the head) agree on shapes.
    pub fn validate(&self) -> bool {
        self.blocks.len() == NUM_STAGES
            && self.blocks.windows(2).all(|w| w[0].output_shape() == w[1].input_shape())
            && self.blocks[0].input_shape() == self.input
            && self.blocks[NUM_STAGES - 1].output_shape() == self.head.input_shape()
            && self.head.output_shape() == TensorShape::vector(self.num_classes)
    }
}

/// Builds the standard classifier head micro-block: global average pooling
/// followed by a fully connected layer.
pub(crate) fn build_head(input: TensorShape, num_classes: usize) -> LayerGraph {
    use crate::layer::LayerKind;
    let mut b = LayerGraph::builder(input);
    b.chain(LayerKind::GlobalAvgPool);
    b.chain(LayerKind::Linear { in_features: input.channels, out_features: num_classes, bias: true });
    b.build().expect("head graph is trivially valid")
}

/// Scales a channel count by a width multiplier, rounding to a multiple of 8
/// (the convention used by MobileNet and most width-scaled CNNs) and never
/// below 8.
pub(crate) fn scale_channels(base: usize, width_permille: u32) -> usize {
    let scaled = (base as u64 * width_permille as u64) as f64 / 1000.0;
    let rounded = ((scaled / 8.0).round() as usize) * 8;
    rounded.max(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_channels_rounds_to_multiple_of_8() {
        assert_eq!(scale_channels(64, 1000), 64);
        assert_eq!(scale_channels(64, 500), 32);
        assert_eq!(scale_channels(64, 750), 48);
        assert_eq!(scale_channels(24, 250), 8); // floor at 8
        assert_eq!(scale_channels(512, 1250), 640);
    }

    #[test]
    fn family_display() {
        assert_eq!(ModelFamily::ResNet18.to_string(), "resnet18");
        assert_eq!(ModelFamily::MobileNetV2.to_string(), "mobilenetv2");
    }
}

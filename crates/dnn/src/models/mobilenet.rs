//! MobileNetV2 builder (Sandler et al., CVPR 2018), segmented into four
//! layer-blocks matching the paper's block granularity.

use super::{scale_channels, ModelFamily, SegmentedModel, NUM_STAGES};
use crate::graph::{LayerGraph, LayerGraphBuilder, Source};
use crate::layer::LayerKind;
use crate::shape::TensorShape;

/// Inverted residual stage setting: (expansion t, output channels c,
/// repetitions n, first stride s) — Table 2 of the MobileNetV2 paper.
const SETTINGS: [(usize, usize, usize, usize); 7] = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
];

/// How the seven inverted-residual stages map onto the four coarse blocks:
/// block 0 also contains the stem, block 3 the 1x1 head conv, pooling and
/// classifier.
const STAGE_SPLIT: [std::ops::Range<usize>; NUM_STAGES] = [0..2, 2..4, 4..5, 5..7];

/// Builds MobileNetV2.
///
/// ```
/// use offloadnn_dnn::models::mobilenet_v2;
/// use offloadnn_dnn::shape::TensorShape;
///
/// let m = mobilenet_v2(60, 1000, TensorShape::new(3, 224, 224));
/// // ~2.6M params with a 60-class head (paper quotes 6.9M with a 1280-wide
/// // head and 1000 classes; class count changes only the final FC).
/// assert!(m.validate());
/// ```
pub fn mobilenet_v2(num_classes: usize, width_permille: u32, input: TensorShape) -> SegmentedModel {
    let head_ch = scale_channels(1280, width_permille.max(1000));

    let mut blocks = Vec::with_capacity(NUM_STAGES);
    let mut cursor = input;
    let mut in_ch = input.channels;

    for (stage, range) in STAGE_SPLIT.iter().enumerate() {
        let mut b = LayerGraph::builder(cursor);

        if stage == 0 {
            // Stem: 3x3 s2 conv to 32 channels.
            let stem_ch = scale_channels(32, width_permille);
            b.chain(LayerKind::conv(in_ch, stem_ch, 3, 2, 1));
            b.chain(LayerKind::BatchNorm2d { channels: stem_ch });
            b.chain(LayerKind::Activation);
            in_ch = stem_ch;
        }

        for &(t, c, n, s) in &SETTINGS[range.clone()] {
            let out_ch = scale_channels(c, width_permille);
            for i in 0..n {
                let stride = if i == 0 { s } else { 1 };
                inverted_residual(&mut b, in_ch, out_ch, t, stride);
                in_ch = out_ch;
            }
        }

        if stage == NUM_STAGES - 1 {
            // The 1x1 expansion conv to the head width stays in the last
            // feature block (it is part of torchvision's `features`).
            b.chain(LayerKind::conv(in_ch, head_ch, 1, 1, 0));
            b.chain(LayerKind::BatchNorm2d { channels: head_ch });
            b.chain(LayerKind::Activation);
        }

        let g = b.build().expect("mobilenet builder produces valid graphs");
        cursor = g.output_shape();
        blocks.push(g);
    }

    let head = super::build_head(cursor, num_classes);

    SegmentedModel {
        family: ModelFamily::MobileNetV2,
        width_permille,
        num_classes,
        input,
        head_features: head_ch,
        blocks,
        head,
    }
}

/// Appends one inverted residual block: 1x1 expand, 3x3 depthwise, 1x1
/// project, with a residual add when stride is 1 and channels match.
fn inverted_residual(
    b: &mut LayerGraphBuilder,
    in_ch: usize,
    out_ch: usize,
    expansion: usize,
    stride: usize,
) {
    let entry = if b.next_id() == 0 { Source::Input } else { Source::Node(b.next_id() - 1) };
    let hidden = in_ch * expansion;

    let mut last = entry;
    if expansion != 1 {
        let e = b.with_input(LayerKind::conv(in_ch, hidden, 1, 1, 0), entry);
        b.with_input(LayerKind::BatchNorm2d { channels: hidden }, Source::Node(e));
        let a = b.chain(LayerKind::Activation);
        last = Source::Node(a);
    }

    let dw = b.with_input(LayerKind::depthwise_conv(hidden, 3, stride, 1), last);
    b.with_input(LayerKind::BatchNorm2d { channels: hidden }, Source::Node(dw));
    b.chain(LayerKind::Activation);
    b.chain(LayerKind::conv(hidden, out_ch, 1, 1, 0));
    let proj_bn = b.chain(LayerKind::BatchNorm2d { channels: out_ch });

    if stride == 1 && in_ch == out_ch {
        b.add(Source::Node(proj_bn), entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::resnet18;

    #[test]
    fn mobilenet_params_near_torchvision() {
        // torchvision mobilenet_v2 (1000 classes): 3,504,872 params.
        let m = mobilenet_v2(1000, 1000, TensorShape::new(3, 224, 224));
        let p = m.params();
        assert!((3_300_000..3_700_000).contains(&p), "got {p}");
    }

    #[test]
    fn mobilenet_is_much_cheaper_than_resnet18() {
        // The paper's intro motivates MobileNetV2 as the light alternative.
        let input = TensorShape::new(3, 224, 224);
        let mn = mobilenet_v2(60, 1000, input);
        let rn = resnet18(60, 1000, input);
        assert!(mn.flops() * 4 < rn.flops());
        assert!(mn.params() * 2 < rn.params());
    }

    #[test]
    fn mobilenet_stage_shapes_chain() {
        let m = mobilenet_v2(10, 1000, TensorShape::new(3, 224, 224));
        assert!(m.validate());
        assert_eq!(m.blocks[3].output_shape().channels, 1280);
        assert_eq!(m.head.output_shape(), TensorShape::vector(10));
        assert_eq!(m.head_features, 1280);
    }

    #[test]
    fn flops_in_expected_range() {
        // ~0.3 GMACs = ~0.6 GFLOPs commonly quoted.
        let m = mobilenet_v2(1000, 1000, TensorShape::new(3, 224, 224));
        let gflops = m.flops() as f64 / 1e9;
        assert!((0.5..0.9).contains(&gflops), "got {gflops}");
    }
}

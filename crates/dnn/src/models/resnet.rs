//! ResNet-18/34 builders (He et al., CVPR 2016), segmented into the four
//! layer-blocks the paper shares, fine-tunes and prunes.

use super::{scale_channels, ModelFamily, SegmentedModel, NUM_STAGES};
use crate::graph::{LayerGraph, LayerGraphBuilder, Source};
use crate::layer::LayerKind;
use crate::shape::TensorShape;

/// Builds ResNet-18: stages of [2, 2, 2, 2] basic blocks.
///
/// ```
/// use offloadnn_dnn::models::resnet18;
/// use offloadnn_dnn::shape::TensorShape;
///
/// let m = resnet18(60, 1000, TensorShape::new(3, 224, 224));
/// // Canonical ResNet-18 with a 60-class head: ~11.2M params, ~3.6 GFLOPs.
/// assert!(m.params() > 11_000_000 && m.params() < 11_500_000);
/// assert!(m.validate());
/// ```
pub fn resnet18(num_classes: usize, width_permille: u32, input: TensorShape) -> SegmentedModel {
    build_resnet(ModelFamily::ResNet18, [2, 2, 2, 2], num_classes, width_permille, input)
}

/// Builds ResNet-34: stages of [3, 4, 6, 3] basic blocks.
pub fn resnet34(num_classes: usize, width_permille: u32, input: TensorShape) -> SegmentedModel {
    build_resnet(ModelFamily::ResNet34, [3, 4, 6, 3], num_classes, width_permille, input)
}

/// Builds ResNet-50: stages of [3, 4, 6, 3] *bottleneck* blocks
/// (1x1 reduce, 3x3, 1x1 expand with 4x expansion).
pub fn resnet50(num_classes: usize, width_permille: u32, input: TensorShape) -> SegmentedModel {
    build_bottleneck_resnet(ModelFamily::ResNet50, [3, 4, 6, 3], num_classes, width_permille, input)
}

/// Builds ResNet-101: stages of [3, 4, 23, 3] bottleneck blocks.
pub fn resnet101(num_classes: usize, width_permille: u32, input: TensorShape) -> SegmentedModel {
    build_bottleneck_resnet(ModelFamily::ResNet101, [3, 4, 23, 3], num_classes, width_permille, input)
}

fn build_bottleneck_resnet(
    family: ModelFamily,
    depths: [usize; NUM_STAGES],
    num_classes: usize,
    width_permille: u32,
    input: TensorShape,
) -> SegmentedModel {
    let widths: Vec<usize> =
        [64usize, 128, 256, 512].iter().map(|&w| scale_channels(w, width_permille)).collect();
    const EXPANSION: usize = 4;

    let mut blocks = Vec::with_capacity(NUM_STAGES);
    let mut cursor = input;

    for stage in 0..NUM_STAGES {
        let mut b = LayerGraph::builder(cursor);
        let mut in_ch = cursor.channels;

        if stage == 0 {
            b.chain(LayerKind::conv(in_ch, widths[0], 7, 2, 3));
            b.chain(LayerKind::BatchNorm2d { channels: widths[0] });
            b.chain(LayerKind::Activation);
            b.chain(LayerKind::MaxPool2d { kernel: 3, stride: 2, padding: 1 });
            in_ch = widths[0];
        }

        let mid_ch = widths[stage];
        let out_ch = mid_ch * EXPANSION;
        for block_idx in 0..depths[stage] {
            let stride = if stage > 0 && block_idx == 0 { 2 } else { 1 };
            bottleneck_block(&mut b, in_ch, mid_ch, out_ch, stride);
            in_ch = out_ch;
        }

        let g = b.build().expect("bottleneck resnet builder produces valid graphs");
        cursor = g.output_shape();
        blocks.push(g);
    }

    let head = super::build_head(cursor, num_classes);

    SegmentedModel {
        family,
        width_permille,
        num_classes,
        input,
        head_features: widths[NUM_STAGES - 1] * EXPANSION,
        blocks,
        head,
    }
}

/// Appends one bottleneck residual block: 1x1 reduce, 3x3, 1x1 expand,
/// with identity or projection shortcut.
fn bottleneck_block(b: &mut LayerGraphBuilder, in_ch: usize, mid_ch: usize, out_ch: usize, stride: usize) {
    let entry = if b.next_id() == 0 { Source::Input } else { Source::Node(b.next_id() - 1) };

    let c1 = b.with_input(LayerKind::conv(in_ch, mid_ch, 1, 1, 0), entry);
    b.chain(LayerKind::BatchNorm2d { channels: mid_ch });
    b.chain(LayerKind::Activation);
    b.chain(LayerKind::conv(mid_ch, mid_ch, 3, stride, 1));
    b.chain(LayerKind::BatchNorm2d { channels: mid_ch });
    b.chain(LayerKind::Activation);
    b.chain(LayerKind::conv(mid_ch, out_ch, 1, 1, 0));
    let bn3 = b.chain(LayerKind::BatchNorm2d { channels: out_ch });

    let shortcut = if stride != 1 || in_ch != out_ch {
        let pc = b.with_input(LayerKind::conv(in_ch, out_ch, 1, stride, 0), entry);
        let pbn = b.with_input(LayerKind::BatchNorm2d { channels: out_ch }, Source::Node(pc));
        Source::Node(pbn)
    } else {
        entry
    };

    let add = b.add(Source::Node(bn3), shortcut);
    b.with_input(LayerKind::Activation, Source::Node(add));
    let _ = c1;
}

fn build_resnet(
    family: ModelFamily,
    depths: [usize; NUM_STAGES],
    num_classes: usize,
    width_permille: u32,
    input: TensorShape,
) -> SegmentedModel {
    let widths: Vec<usize> =
        [64usize, 128, 256, 512].iter().map(|&w| scale_channels(w, width_permille)).collect();

    let mut blocks = Vec::with_capacity(NUM_STAGES);
    let mut cursor = input;

    for stage in 0..NUM_STAGES {
        let mut b = LayerGraph::builder(cursor);
        let mut in_ch = cursor.channels;

        if stage == 0 {
            // Stem: 7x7 s2 conv + BN + ReLU + 3x3 s2 maxpool.
            b.chain(LayerKind::conv(in_ch, widths[0], 7, 2, 3));
            b.chain(LayerKind::BatchNorm2d { channels: widths[0] });
            b.chain(LayerKind::Activation);
            b.chain(LayerKind::MaxPool2d { kernel: 3, stride: 2, padding: 1 });
            in_ch = widths[0];
        }

        let out_ch = widths[stage];
        for block_idx in 0..depths[stage] {
            // First block of stages 2..4 downsamples spatially and widens.
            let stride = if stage > 0 && block_idx == 0 { 2 } else { 1 };
            basic_block(&mut b, in_ch, out_ch, stride);
            in_ch = out_ch;
        }

        let g = b.build().expect("resnet builder produces valid graphs");
        cursor = g.output_shape();
        blocks.push(g);
    }

    let head = super::build_head(cursor, num_classes);

    SegmentedModel {
        family,
        width_permille,
        num_classes,
        input,
        head_features: widths[NUM_STAGES - 1],
        blocks,
        head,
    }
}

/// Appends one basic residual block (two 3x3 convs, identity or projection
/// shortcut) to the builder. The builder's latest node is the block input.
fn basic_block(b: &mut LayerGraphBuilder, in_ch: usize, out_ch: usize, stride: usize) {
    let entry = if b.next_id() == 0 { Source::Input } else { Source::Node(b.next_id() - 1) };

    let c1 = b.with_input(LayerKind::conv(in_ch, out_ch, 3, stride, 1), entry);
    b.chain(LayerKind::BatchNorm2d { channels: out_ch });
    b.chain(LayerKind::Activation);
    b.chain(LayerKind::conv(out_ch, out_ch, 3, 1, 1));
    let bn2 = b.chain(LayerKind::BatchNorm2d { channels: out_ch });

    let shortcut = if stride != 1 || in_ch != out_ch {
        // Projection shortcut: 1x1 conv + BN.
        let pc = b.with_input(LayerKind::conv(in_ch, out_ch, 1, stride, 0), entry);
        let pbn = b.with_input(LayerKind::BatchNorm2d { channels: out_ch }, Source::Node(pc));
        Source::Node(pbn)
    } else {
        entry
    };

    let add = b.add(Source::Node(bn2), shortcut);
    b.with_input(LayerKind::Activation, Source::Node(add));
    let _ = c1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_params_match_torchvision() {
        // torchvision resnet18 with 1000 classes: 11,689,512 parameters.
        let m = resnet18(1000, 1000, TensorShape::new(3, 224, 224));
        assert_eq!(m.params(), 11_689_512);
    }

    #[test]
    fn resnet18_flops_in_expected_range() {
        // Commonly quoted: ~1.8 GMACs = ~3.6 GFLOPs for 224x224.
        let m = resnet18(1000, 1000, TensorShape::new(3, 224, 224));
        let gflops = m.flops() as f64 / 1e9;
        assert!((3.3..4.0).contains(&gflops), "got {gflops} GFLOPs");
    }

    #[test]
    fn resnet18_stage_shapes() {
        let m = resnet18(10, 1000, TensorShape::new(3, 224, 224));
        assert_eq!(m.blocks[0].output_shape(), TensorShape::new(64, 56, 56));
        assert_eq!(m.blocks[1].output_shape(), TensorShape::new(128, 28, 28));
        assert_eq!(m.blocks[2].output_shape(), TensorShape::new(256, 14, 14));
        assert_eq!(m.blocks[3].output_shape(), TensorShape::new(512, 7, 7));
        assert_eq!(m.head.output_shape(), TensorShape::vector(10));
        assert!(m.validate());
    }

    #[test]
    fn resnet34_is_deeper_than_resnet18() {
        let input = TensorShape::new(3, 224, 224);
        let m18 = resnet18(100, 1000, input);
        let m34 = resnet34(100, 1000, input);
        assert!(m34.params() > m18.params());
        assert!(m34.flops() > m18.flops());
        // torchvision resnet34 (1000 classes): 21,797,672 params.
        let m34_full = resnet34(1000, 1000, input);
        assert_eq!(m34_full.params(), 21_797_672);
    }

    #[test]
    fn width_multiplier_scales_params_roughly_quadratically() {
        let input = TensorShape::new(3, 224, 224);
        let full = resnet18(10, 1000, input);
        let half = resnet18(10, 500, input);
        let ratio = full.params() as f64 / half.params() as f64;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
        assert!(half.validate());
    }

    #[test]
    fn last_stage_dominates_parameters() {
        // The paper's stage-4 block holds most of ResNet-18's parameters,
        // which is why pruning it matters most.
        let m = resnet18(60, 1000, TensorShape::new(3, 224, 224));
        let p3 = m.blocks[3].params();
        assert!(p3 as f64 > 0.6 * m.params() as f64);
        // The head is a tiny micro-block: 512*60 + 60 parameters.
        assert_eq!(m.head.params(), 512 * 60 + 60);
    }

    #[test]
    fn resnet50_params_match_torchvision() {
        // torchvision resnet50 (1000 classes): 25,557,032 parameters.
        let m = resnet50(1000, 1000, TensorShape::new(3, 224, 224));
        assert_eq!(m.params(), 25_557_032);
        assert!(m.validate());
        assert_eq!(m.head_features, 2048);
    }

    #[test]
    fn resnet50_flops_in_expected_range() {
        // Commonly quoted: ~4.1 GMACs = ~8.2 GFLOPs.
        let m = resnet50(1000, 1000, TensorShape::new(3, 224, 224));
        let gflops = m.flops() as f64 / 1e9;
        assert!((7.5..9.0).contains(&gflops), "got {gflops}");
    }

    #[test]
    fn resnet101_params_match_torchvision() {
        // torchvision resnet101 (1000 classes): 44,549,160 parameters.
        let m = resnet101(1000, 1000, TensorShape::new(3, 224, 224));
        assert_eq!(m.params(), 44_549_160);
        assert!(m.validate());
    }

    #[test]
    fn resnet50_prunes_cleanly() {
        use crate::prune::{prune, PruneSpec};
        let m = resnet50(60, 1000, TensorShape::new(3, 224, 224));
        for blk in &m.blocks {
            let p = prune(blk, PruneSpec::interior(0.8)).unwrap();
            assert!(p.params_after < p.params_before);
            assert_eq!(p.graph.input_shape(), blk.input_shape());
            assert_eq!(p.graph.output_shape(), blk.output_shape());
        }
    }

    #[test]
    fn works_at_reduced_resolution() {
        let m = resnet18(60, 1000, TensorShape::new(3, 160, 160));
        assert!(m.validate());
        assert!(m.flops() < resnet18(60, 1000, TensorShape::new(3, 224, 224)).flops());
    }
}

//! The paper's Table I block configurations (CONFIG A–E, plus pruned
//! versions).
//!
//! A configuration is a *sharing split* `k`: the first `k` layer-blocks are
//! taken frozen from the pretrained base DNN, the remaining `4 - k` blocks
//! (plus the classifier) are fine-tuned for the task group. The pruned
//! version structurally prunes exactly the fine-tuned portion.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::models::NUM_STAGES;

/// Table I configuration names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Config {
    /// Entire DNN trained from scratch (no sharing).
    A,
    /// First 4 layer-blocks shared from the base DNN (only the classifier
    /// head is task-specific).
    B,
    /// First 3 layer-blocks shared; last block + classifier fine-tuned.
    C,
    /// First 2 layer-blocks shared; last 2 blocks + classifier fine-tuned.
    D,
    /// First 1 layer-block shared; last 3 blocks + classifier fine-tuned.
    E,
}

impl Config {
    /// All configurations in Table I order.
    pub const ALL: [Config; 5] = [Config::A, Config::B, Config::C, Config::D, Config::E];

    /// Number of leading layer-blocks shared (frozen) from the base DNN.
    pub fn shared_prefix(self) -> usize {
        match self {
            Config::A => 0,
            Config::B => NUM_STAGES,
            Config::C => NUM_STAGES - 1,
            Config::D => NUM_STAGES - 2,
            Config::E => NUM_STAGES - 3,
        }
    }

    /// Whether the fine-tuned portion starts from random initialisation.
    pub fn from_scratch(self) -> bool {
        matches!(self, Config::A)
    }

    /// The configuration with the given shared prefix length.
    ///
    /// # Panics
    ///
    /// Panics if `k > NUM_STAGES`.
    pub fn with_shared_prefix(k: usize) -> Config {
        match k {
            0 => Config::A,
            1 => Config::E,
            2 => Config::D,
            3 => Config::C,
            4 => Config::B,
            _ => panic!("shared prefix {k} exceeds {NUM_STAGES} stages"),
        }
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CONFIG {:?}", self)
    }
}

/// A configuration together with its optional pruning, i.e. one row of
/// Table I. Ten of these exist per (model, task-group) pair, which is the
/// paper's `|Pi^d_tau| = 10` path count in the large-scale scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathConfig {
    /// The sharing split.
    pub config: Config,
    /// Whether the fine-tuned blocks are pruned.
    pub pruned: bool,
}

impl PathConfig {
    /// All ten Table I rows, unpruned first.
    pub fn all() -> Vec<PathConfig> {
        let mut v = Vec::with_capacity(10);
        for pruned in [false, true] {
            for config in Config::ALL {
                v.push(PathConfig { config, pruned });
            }
        }
        v
    }

    /// Human-readable label matching the paper ("CONFIG C-pruned").
    pub fn label(&self) -> String {
        if self.pruned {
            format!("{}-pruned", self.config)
        } else {
            self.config.to_string()
        }
    }
}

impl fmt::Display for PathConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_prefix_matches_table_i() {
        assert_eq!(Config::A.shared_prefix(), 0);
        assert_eq!(Config::B.shared_prefix(), 4);
        assert_eq!(Config::C.shared_prefix(), 3);
        assert_eq!(Config::D.shared_prefix(), 2);
        assert_eq!(Config::E.shared_prefix(), 1);
    }

    #[test]
    fn only_config_a_trains_from_scratch() {
        for c in Config::ALL {
            assert_eq!(c.from_scratch(), c == Config::A);
        }
    }

    #[test]
    fn with_shared_prefix_roundtrips() {
        for c in Config::ALL {
            assert_eq!(Config::with_shared_prefix(c.shared_prefix()), c);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_prefix_panics() {
        Config::with_shared_prefix(5);
    }

    #[test]
    fn ten_path_configs() {
        let all = PathConfig::all();
        assert_eq!(all.len(), 10);
        assert_eq!(all.iter().filter(|p| p.pruned).count(), 5);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(PathConfig { config: Config::C, pruned: true }.label(), "CONFIG C-pruned");
        assert_eq!(PathConfig { config: Config::A, pruned: false }.to_string(), "CONFIG A");
    }
}

//! A directed acyclic graph of layers with shape propagation.
//!
//! Nodes are stored in topological (insertion) order; each node names its
//! input nodes by index, with [`Source::Input`] denoting the graph input.
//! This is sufficient to express sequential CNNs with residual skip
//! connections (ResNet basic blocks, MobileNet inverted residuals) while
//! keeping the cost accounting exact and auditable.

use crate::layer::LayerKind;
use crate::shape::TensorShape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node inside one [`LayerGraph`].
pub type NodeId = usize;

/// Where a node draws its input tensor from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Source {
    /// The graph's external input.
    Input,
    /// The output of a previous node.
    Node(NodeId),
}

/// One layer instance in the graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// The layer and its hyper-parameters.
    pub kind: LayerKind,
    /// Inputs; exactly one for all layers except [`LayerKind::Add`], which
    /// takes two.
    pub inputs: Vec<Source>,
}

/// Errors produced while building or validating a [`LayerGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node referenced an input at or after its own position.
    ForwardReference {
        /// Offending node.
        node: NodeId,
    },
    /// A node has the wrong number of inputs for its layer kind.
    ArityMismatch {
        /// Offending node.
        node: NodeId,
        /// Number of inputs found.
        found: usize,
        /// Number of inputs expected.
        expected: usize,
    },
    /// The two inputs of an `Add` node have different shapes.
    AddShapeMismatch {
        /// Offending node.
        node: NodeId,
    },
    /// The graph has no nodes.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::ForwardReference { node } => write!(f, "node {node} references a later node"),
            GraphError::ArityMismatch { node, found, expected } => {
                write!(f, "node {node} has {found} inputs, expected {expected}")
            }
            GraphError::AddShapeMismatch { node } => write!(f, "add node {node} joins mismatched shapes"),
            GraphError::Empty => write!(f, "graph has no nodes"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A validated DAG of layers.
///
/// ```
/// use offloadnn_dnn::graph::LayerGraph;
/// use offloadnn_dnn::layer::LayerKind;
/// use offloadnn_dnn::shape::TensorShape;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = LayerGraph::builder(TensorShape::new(3, 32, 32));
/// let c = b.chain(LayerKind::conv(3, 8, 3, 1, 1));
/// b.chain(LayerKind::Activation);
/// let g = b.build()?;
/// assert_eq!(g.output_shape().channels, 8);
/// assert!(g.params() > 0);
/// # let _ = c;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerGraph {
    input_shape: TensorShape,
    nodes: Vec<Node>,
    /// Cached output shape of every node, in node order.
    shapes: Vec<TensorShape>,
}

impl LayerGraph {
    /// Starts building a graph for the given input shape.
    pub fn builder(input_shape: TensorShape) -> LayerGraphBuilder {
        LayerGraphBuilder { input_shape, nodes: Vec::new() }
    }

    /// The external input shape.
    pub fn input_shape(&self) -> TensorShape {
        self.input_shape
    }

    /// Output shape of the last node.
    pub fn output_shape(&self) -> TensorShape {
        *self.shapes.last().expect("validated graph is non-empty")
    }

    /// Output shape of a specific node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn shape_of(&self, node: NodeId) -> TensorShape {
        self.shapes[node]
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no layers (never true for a validated graph).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total trainable parameters.
    pub fn params(&self) -> u64 {
        self.nodes.iter().map(|n| n.kind.params()).sum()
    }

    /// Total FLOPs for one input sample.
    pub fn flops(&self) -> u64 {
        self.nodes.iter().enumerate().map(|(i, n)| n.kind.flops(self.node_input_shape(i))).sum()
    }

    /// Sum of all intermediate activation elements for one sample, including
    /// the input. Used by the training-memory model: the backward pass must
    /// retain every activation from the first trainable layer onward.
    pub fn activation_elements(&self) -> u64 {
        self.input_shape.elements() as u64 + self.shapes.iter().map(|s| s.elements() as u64).sum::<u64>()
    }

    /// Number of kernel launches a runtime would issue; feeds the
    /// per-layer overhead term of the latency model. Element-wise nodes
    /// (activations, residual adds, channel selects) are fused into their
    /// producers by every serious runtime and launch nothing.
    pub fn kernel_launches(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| {
                matches!(
                    n.kind,
                    LayerKind::Conv2d { .. }
                        | LayerKind::BatchNorm2d { .. }
                        | LayerKind::Linear { .. }
                        | LayerKind::MaxPool2d { .. }
                        | LayerKind::GlobalAvgPool
                )
            })
            .count() as u64
    }

    /// Largest single activation tensor produced by any node (or the
    /// input), in elements per sample. Drives the transient forward-buffer
    /// term of the training-memory model.
    pub fn peak_activation_elements(&self) -> u64 {
        self.shapes
            .iter()
            .map(|s| s.elements() as u64)
            .chain(std::iter::once(self.input_shape.elements() as u64))
            .max()
            .unwrap_or(0)
    }

    /// Shape seen by node `i` (its first input's shape).
    fn node_input_shape(&self, i: NodeId) -> TensorShape {
        match self.nodes[i].inputs[0] {
            Source::Input => self.input_shape,
            Source::Node(j) => self.shapes[j],
        }
    }
}

/// Incremental builder for [`LayerGraph`].
#[derive(Debug)]
pub struct LayerGraphBuilder {
    input_shape: TensorShape,
    nodes: Vec<Node>,
}

impl LayerGraphBuilder {
    /// Appends a layer fed by the most recently added node (or the graph
    /// input if none), returning its id.
    pub fn chain(&mut self, kind: LayerKind) -> NodeId {
        let input = if self.nodes.is_empty() { Source::Input } else { Source::Node(self.nodes.len() - 1) };
        self.push(kind, vec![input])
    }

    /// Appends a layer with an explicit input, returning its id.
    pub fn with_input(&mut self, kind: LayerKind, input: Source) -> NodeId {
        self.push(kind, vec![input])
    }

    /// Appends a residual `Add` joining two earlier nodes, returning its id.
    pub fn add(&mut self, a: Source, b: Source) -> NodeId {
        self.push(LayerKind::Add, vec![a, b])
    }

    /// Id the next appended node will receive.
    pub fn next_id(&self) -> NodeId {
        self.nodes.len()
    }

    fn push(&mut self, kind: LayerKind, inputs: Vec<Source>) -> NodeId {
        self.nodes.push(Node { kind, inputs });
        self.nodes.len() - 1
    }

    /// Validates arity, ordering and residual shape agreement, and computes
    /// the shape cache.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] describing the first structural defect found.
    pub fn build(self) -> Result<LayerGraph, GraphError> {
        if self.nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        let mut shapes: Vec<TensorShape> = Vec::with_capacity(self.nodes.len());
        for (i, node) in self.nodes.iter().enumerate() {
            let expected = if matches!(node.kind, LayerKind::Add) { 2 } else { 1 };
            if node.inputs.len() != expected {
                return Err(GraphError::ArityMismatch { node: i, found: node.inputs.len(), expected });
            }
            let mut in_shapes = Vec::with_capacity(node.inputs.len());
            for src in &node.inputs {
                match *src {
                    Source::Input => in_shapes.push(self.input_shape),
                    Source::Node(j) => {
                        if j >= i {
                            return Err(GraphError::ForwardReference { node: i });
                        }
                        in_shapes.push(shapes[j]);
                    }
                }
            }
            if matches!(node.kind, LayerKind::Add) && in_shapes[0] != in_shapes[1] {
                return Err(GraphError::AddShapeMismatch { node: i });
            }
            shapes.push(node.kind.output_shape(in_shapes[0]));
        }
        Ok(LayerGraph { input_shape: self.input_shape, nodes: self.nodes, shapes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual_block(channels: usize) -> LayerGraph {
        let mut b = LayerGraph::builder(TensorShape::new(channels, 8, 8));
        let c1 = b.chain(LayerKind::conv(channels, channels, 3, 1, 1));
        b.chain(LayerKind::BatchNorm2d { channels });
        b.chain(LayerKind::Activation);
        let c2 = b.chain(LayerKind::conv(channels, channels, 3, 1, 1));
        let bn2 = b.chain(LayerKind::BatchNorm2d { channels });
        let add = b.add(Source::Node(bn2), Source::Input);
        b.with_input(LayerKind::Activation, Source::Node(add));
        let _ = (c1, c2);
        b.build().expect("valid block")
    }

    #[test]
    fn residual_block_shapes_and_params() {
        let g = residual_block(16);
        assert_eq!(g.output_shape(), TensorShape::new(16, 8, 8));
        // Two 3x3 convs (16*16*9 each) + two BN (32 each).
        assert_eq!(g.params(), 2 * (16 * 16 * 9) as u64 + 2 * 32);
        assert_eq!(g.len(), 7);
    }

    #[test]
    fn flops_sum_over_nodes() {
        let g = residual_block(16);
        // Convs dominate: each 2*8*8*16*16*9 FLOPs.
        let conv_flops = 2 * 2 * 8 * 8 * 16 * 16 * 9u64;
        assert!(g.flops() > conv_flops);
        assert!(g.flops() < conv_flops + 10 * 16 * 8 * 8);
    }

    #[test]
    fn forward_reference_rejected() {
        let mut b = LayerGraph::builder(TensorShape::new(4, 4, 4));
        b.with_input(LayerKind::Activation, Source::Node(5));
        assert_eq!(b.build().unwrap_err(), GraphError::ForwardReference { node: 0 });
    }

    #[test]
    fn add_arity_enforced() {
        let mut b = LayerGraph::builder(TensorShape::new(4, 4, 4));
        b.chain(LayerKind::Activation);
        // Manually push a malformed Add with one input.
        b.nodes.push(Node { kind: LayerKind::Add, inputs: vec![Source::Node(0)] });
        assert!(matches!(b.build().unwrap_err(), GraphError::ArityMismatch { expected: 2, .. }));
    }

    #[test]
    fn add_shape_mismatch_rejected() {
        let mut b = LayerGraph::builder(TensorShape::new(4, 8, 8));
        let down = b.chain(LayerKind::conv(4, 4, 3, 2, 1)); // 4x4x4
        let add = b.add(Source::Node(down), Source::Input);
        let _ = add;
        assert!(matches!(b.build().unwrap_err(), GraphError::AddShapeMismatch { .. }));
    }

    #[test]
    fn empty_graph_rejected() {
        let b = LayerGraph::builder(TensorShape::new(1, 1, 1));
        assert_eq!(b.build().unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn activation_elements_include_input() {
        let g = residual_block(4);
        let input = 4 * 8 * 8;
        assert!(g.activation_elements() >= (input * (g.len() + 1)) as u64);
    }

    #[test]
    fn error_display() {
        let e = GraphError::AddShapeMismatch { node: 3 };
        assert_eq!(e.to_string(), "add node 3 joins mismatched shapes");
    }
}

//! Individual DNN layers with parameter and FLOP accounting.
//!
//! FLOP counts follow the convention used by most profilers (and by the
//! paper's DepGraph tooling): one multiply-accumulate = 2 FLOPs. Parameter
//! counts include biases and BatchNorm affine parameters.

use crate::shape::TensorShape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a layer, together with its hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv2d {
        /// Input channels.
        in_channels: usize,
        /// Output channels.
        out_channels: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Symmetric zero padding.
        padding: usize,
        /// Channel groups (`in_channels` for a depthwise convolution).
        groups: usize,
        /// Whether a bias vector is present.
        bias: bool,
    },
    /// Batch normalisation over channels (affine).
    BatchNorm2d {
        /// Number of channels.
        channels: usize,
    },
    /// Element-wise activation (ReLU / ReLU6); parameter free.
    Activation,
    /// Max pooling window.
    MaxPool2d {
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Symmetric zero padding.
        padding: usize,
    },
    /// Global average pooling down to `C x 1 x 1`.
    GlobalAvgPool,
    /// Fully connected layer on a flattened input.
    Linear {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
        /// Whether a bias vector is present.
        bias: bool,
    },
    /// Element-wise addition of a residual branch; parameter free.
    Add,
    /// Channel selection (gather of a channel subset), the structural
    /// residue of magnitude-pruning the *consumer* of a frozen tensor:
    /// e.g. pruning input columns of a classifier whose upstream features
    /// are shared and must not change. Parameter free.
    Select {
        /// Channels available upstream.
        in_channels: usize,
        /// Channels kept.
        out_channels: usize,
    },
}

impl LayerKind {
    /// Convenience constructor for a standard (non-grouped, biasless)
    /// convolution as used throughout ResNet.
    pub fn conv(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        LayerKind::Conv2d { in_channels, out_channels, kernel, stride, padding, groups: 1, bias: false }
    }

    /// Convenience constructor for a depthwise convolution (MobileNet).
    pub fn depthwise_conv(channels: usize, kernel: usize, stride: usize, padding: usize) -> Self {
        LayerKind::Conv2d {
            in_channels: channels,
            out_channels: channels,
            kernel,
            stride,
            padding,
            groups: channels,
            bias: false,
        }
    }

    /// Number of trainable parameters in this layer.
    pub fn params(&self) -> u64 {
        match *self {
            LayerKind::Conv2d { in_channels, out_channels, kernel, groups, bias, .. } => {
                let weights = (in_channels / groups) as u64 * out_channels as u64 * (kernel * kernel) as u64;
                weights + if bias { out_channels as u64 } else { 0 }
            }
            LayerKind::BatchNorm2d { channels } => 2 * channels as u64,
            LayerKind::Linear { in_features, out_features, bias } => {
                in_features as u64 * out_features as u64 + if bias { out_features as u64 } else { 0 }
            }
            LayerKind::Activation
            | LayerKind::MaxPool2d { .. }
            | LayerKind::GlobalAvgPool
            | LayerKind::Add
            | LayerKind::Select { .. } => 0,
        }
    }

    /// Shape of the output given an input shape.
    ///
    /// # Panics
    ///
    /// Panics if the input channel count does not match the layer's
    /// expectation; this indicates a malformed graph and is always a
    /// programming error in the model builder.
    pub fn output_shape(&self, input: TensorShape) -> TensorShape {
        match *self {
            LayerKind::Conv2d { in_channels, out_channels, kernel, stride, padding, .. } => {
                assert_eq!(
                    input.channels, in_channels,
                    "conv expects {in_channels} input channels, got {}",
                    input.channels
                );
                input.conv_out(out_channels, kernel, stride, padding)
            }
            LayerKind::BatchNorm2d { channels } => {
                assert_eq!(input.channels, channels, "batchnorm channel mismatch");
                input
            }
            LayerKind::Activation | LayerKind::Add => input,
            LayerKind::MaxPool2d { kernel, stride, padding } => {
                input.conv_out(input.channels, kernel, stride, padding)
            }
            LayerKind::GlobalAvgPool => TensorShape::vector(input.channels),
            LayerKind::Linear { in_features, out_features, .. } => {
                assert_eq!(input.elements(), in_features, "linear input feature mismatch");
                TensorShape::vector(out_features)
            }
            LayerKind::Select { in_channels, out_channels } => {
                assert_eq!(input.channels, in_channels, "select channel mismatch");
                assert!(out_channels <= in_channels, "select cannot widen");
                TensorShape::new(out_channels, input.height, input.width)
            }
        }
    }

    /// FLOPs to process one input sample of the given shape
    /// (1 multiply-accumulate = 2 FLOPs; comparisons and additions count 1).
    pub fn flops(&self, input: TensorShape) -> u64 {
        match *self {
            LayerKind::Conv2d { in_channels, out_channels, kernel, stride, padding, groups, bias } => {
                let out = input.conv_out(out_channels, kernel, stride, padding);
                let macs = out.spatial() as u64
                    * out_channels as u64
                    * (in_channels / groups) as u64
                    * (kernel * kernel) as u64;
                2 * macs + if bias { out.elements() as u64 } else { 0 }
            }
            LayerKind::BatchNorm2d { .. } => 2 * input.elements() as u64,
            LayerKind::Activation => input.elements() as u64,
            LayerKind::MaxPool2d { kernel, stride, padding } => {
                let out = input.conv_out(input.channels, kernel, stride, padding);
                out.elements() as u64 * (kernel * kernel) as u64
            }
            LayerKind::GlobalAvgPool => input.elements() as u64,
            LayerKind::Linear { in_features, out_features, bias } => {
                2 * in_features as u64 * out_features as u64 + if bias { out_features as u64 } else { 0 }
            }
            LayerKind::Add => input.elements() as u64,
            LayerKind::Select { out_channels, .. } => (out_channels * input.spatial()) as u64,
        }
    }

    /// Human-readable one-word layer name.
    pub fn name(&self) -> &'static str {
        match self {
            LayerKind::Conv2d { .. } => "conv2d",
            LayerKind::BatchNorm2d { .. } => "batchnorm2d",
            LayerKind::Activation => "activation",
            LayerKind::MaxPool2d { .. } => "maxpool2d",
            LayerKind::GlobalAvgPool => "globalavgpool",
            LayerKind::Linear { .. } => "linear",
            LayerKind::Add => "add",
            LayerKind::Select { .. } => "select",
        }
    }
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LayerKind::Conv2d { in_channels, out_channels, kernel, stride, .. } => {
                write!(f, "conv{kernel}x{kernel}({in_channels}->{out_channels}, s{stride})")
            }
            LayerKind::BatchNorm2d { channels } => write!(f, "bn({channels})"),
            LayerKind::Linear { in_features, out_features, .. } => {
                write!(f, "fc({in_features}->{out_features})")
            }
            other => write!(f, "{}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_params_match_hand_count() {
        // ResNet stem: 7x7, 3->64, no bias: 3*64*49 = 9408.
        let stem = LayerKind::conv(3, 64, 7, 2, 3);
        assert_eq!(stem.params(), 9408);
        // With bias adds out_channels.
        let biased = LayerKind::Conv2d {
            in_channels: 3,
            out_channels: 64,
            kernel: 7,
            stride: 2,
            padding: 3,
            groups: 1,
            bias: true,
        };
        assert_eq!(biased.params(), 9408 + 64);
    }

    #[test]
    fn depthwise_conv_params() {
        // Depthwise 3x3 over 32 channels: 32 * 1 * 9 = 288.
        let dw = LayerKind::depthwise_conv(32, 3, 1, 1);
        assert_eq!(dw.params(), 288);
    }

    #[test]
    fn conv_flops_match_hand_count() {
        // 3x3 conv 64->64 on 56x56, stride 1 pad 1:
        // MACs = 56*56*64*64*9 = 115,605,504 -> FLOPs = 231,211,008.
        let conv = LayerKind::conv(64, 64, 3, 1, 1);
        let input = TensorShape::new(64, 56, 56);
        assert_eq!(conv.flops(input), 2 * 56 * 56 * 64 * 64 * 9);
        assert_eq!(conv.output_shape(input), input.conv_out(64, 3, 1, 1));
    }

    #[test]
    fn linear_params_and_flops() {
        let fc = LayerKind::Linear { in_features: 512, out_features: 60, bias: true };
        assert_eq!(fc.params(), 512 * 60 + 60);
        assert_eq!(fc.flops(TensorShape::vector(512)), 2 * 512 * 60 + 60);
    }

    #[test]
    fn parameter_free_layers() {
        for k in [
            LayerKind::Activation,
            LayerKind::MaxPool2d { kernel: 3, stride: 2, padding: 1 },
            LayerKind::GlobalAvgPool,
            LayerKind::Add,
        ] {
            assert_eq!(k.params(), 0, "{k} should have no parameters");
        }
    }

    #[test]
    fn batchnorm_tracks_channels() {
        let bn = LayerKind::BatchNorm2d { channels: 128 };
        assert_eq!(bn.params(), 256);
        let s = TensorShape::new(128, 28, 28);
        assert_eq!(bn.output_shape(s), s);
        assert_eq!(bn.flops(s), 2 * s.elements() as u64);
    }

    #[test]
    #[should_panic(expected = "conv expects")]
    fn channel_mismatch_panics() {
        LayerKind::conv(3, 64, 7, 2, 3).output_shape(TensorShape::new(4, 224, 224));
    }

    #[test]
    fn global_pool_flattens() {
        let gap = LayerKind::GlobalAvgPool;
        assert_eq!(gap.output_shape(TensorShape::new(512, 7, 7)), TensorShape::vector(512));
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(format!("{}", LayerKind::conv(3, 64, 7, 2, 3)), "conv7x7(3->64, s2)");
        assert_eq!(format!("{}", LayerKind::BatchNorm2d { channels: 8 }), "bn(8)");
    }
}

//! The DNN repository: interned block variants and dynamic DNN structures.
//!
//! The edge platform of Fig. 4 keeps a repository of DNNs whose blocks can
//! be composed into *paths* (`pi^d_tau`). [`Repository`] owns the segmented
//! models, interns every block variant it is asked to materialise, and
//! returns [`DnnPath`]s — sequences of [`BlockId`]s. Because interning is
//! keyed on [`BlockKey`], two tasks that select overlapping configurations
//! automatically reference the *same* block ids, which is what makes shared
//! memory and shared training cost fall out for free downstream.
//!
//! A path has `NUM_STAGES + 1` blocks: four feature layer-blocks plus the
//! classifier-head micro-block (the head is always task-group specific, so
//! keeping it separate lets CONFIG B share *all* feature blocks while
//! paying only a tiny per-task head).

use crate::block::{BlockEntry, BlockId, BlockKey, BlockMetrics, BlockVariant, GroupId, ModelId, Precision};
use crate::config::PathConfig;
use crate::graph::LayerGraph;
use crate::layer::LayerKind;
use crate::models::{SegmentedModel, NUM_STAGES};
use crate::prune::{kept_channels, prune, PruneError, PruneSpec};
use crate::shape::TensorShape;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::collections::HashSet;

/// Stage index used in [`BlockKey`] for the classifier-head micro-block.
pub const HEAD_STAGE: usize = NUM_STAGES;

/// A concrete path on a dynamic DNN structure: one block per stage plus the
/// classifier head.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DnnPath {
    /// The model the path runs on.
    pub model: ModelId,
    /// The task group the fine-tuned blocks belong to.
    pub group: GroupId,
    /// Which Table I configuration the path realises.
    pub config: PathConfig,
    /// The interned block ids, in execution order (stages then head).
    pub blocks: Vec<BlockId>,
}

/// Repository of models and interned block variants.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Repository {
    models: Vec<SegmentedModel>,
    blocks: Vec<BlockEntry>,
    index: HashMap<BlockKey, BlockId>,
}

impl Repository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a model and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the model fails structural validation.
    pub fn add_model(&mut self, model: SegmentedModel) -> ModelId {
        assert!(model.validate(), "segmented model failed validation");
        self.models.push(model);
        ModelId(self.models.len() as u32 - 1)
    }

    /// The model registered under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by this repository.
    pub fn model(&self, id: ModelId) -> &SegmentedModel {
        &self.models[id.0 as usize]
    }

    /// All registered models.
    pub fn models(&self) -> &[SegmentedModel] {
        &self.models
    }

    /// Number of distinct interned blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The interned block under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by this repository.
    pub fn block(&self, id: BlockId) -> &BlockEntry {
        &self.blocks[id.0 as usize]
    }

    /// All interned blocks, in id order.
    pub fn blocks(&self) -> &[BlockEntry] {
        &self.blocks
    }

    fn intern(
        &mut self,
        key: BlockKey,
        graph: impl FnOnce() -> Result<LayerGraph, PruneError>,
    ) -> Result<BlockId, PruneError> {
        if let Some(&id) = self.index.get(&key) {
            return Ok(id);
        }
        let g = graph()?;
        let metrics = BlockMetrics::derive(&g, &key.variant);
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BlockEntry { key, graph: g, metrics });
        self.index.insert(key, id);
        Ok(id)
    }

    /// Materialises the path realising `cfg` for `(model, group)` with the
    /// given prune ratio, interning any blocks not seen before.
    ///
    /// # Errors
    ///
    /// Returns a [`PruneError`] if the prune ratio is invalid.
    pub fn instantiate_path(
        &mut self,
        model: ModelId,
        group: GroupId,
        cfg: PathConfig,
        ratio: f64,
    ) -> Result<DnnPath, PruneError> {
        self.instantiate_path_at(model, group, cfg, ratio, Precision::Fp32)
    }

    /// Like [`Repository::instantiate_path`], at an explicit deployment
    /// precision. INT8 blocks are distinct artifacts (own ids) but reuse
    /// the same graphs — only their cost profile differs.
    ///
    /// # Errors
    ///
    /// Returns a [`PruneError`] if the prune ratio is invalid.
    pub fn instantiate_path_at(
        &mut self,
        model: ModelId,
        group: GroupId,
        cfg: PathConfig,
        ratio: f64,
        precision: Precision,
    ) -> Result<DnnPath, PruneError> {
        let k = cfg.config.shared_prefix();
        let from_scratch = cfg.config.from_scratch();
        let ratio_permille = (ratio * 1000.0).round() as u32;

        let mut blocks = Vec::with_capacity(NUM_STAGES + 1);
        for stage in 0..NUM_STAGES {
            let variant = if stage < k {
                BlockVariant::Base
            } else if cfg.pruned {
                BlockVariant::Pruned { group, ratio_permille, from_scratch, pruned_input: stage > k }
            } else {
                BlockVariant::FineTuned { group, from_scratch }
            };
            let key = BlockKey { model, stage, variant, precision };
            let base_graph = self.models[model.0 as usize].blocks[stage].clone();
            let id = self.intern(key, move || match variant {
                BlockVariant::Pruned { ratio_permille, pruned_input, .. } => {
                    let spec = PruneSpec {
                        ratio: ratio_permille as f64 / 1000.0,
                        prune_input: pruned_input,
                        prune_output: true,
                    };
                    prune(&base_graph, spec).map(|p| p.graph)
                }
                _ => Ok(base_graph),
            })?;
            blocks.push(id);
        }

        // The classifier head micro-block.
        let head_variant = if cfg.pruned {
            BlockVariant::PrunedHead { group, ratio_permille, pruned_input: k < NUM_STAGES }
        } else {
            BlockVariant::Head { group }
        };
        let key = BlockKey { model, stage: HEAD_STAGE, variant: head_variant, precision };
        let m = &self.models[model.0 as usize];
        let (head_graph, num_classes) = (m.head.clone(), m.num_classes);
        let id = self.intern(key, move || match head_variant {
            BlockVariant::PrunedHead { ratio_permille, pruned_input, .. } => {
                Ok(build_pruned_head(&head_graph, num_classes, ratio_permille as f64 / 1000.0, pruned_input))
            }
            _ => Ok(head_graph),
        })?;
        blocks.push(id);

        Ok(DnnPath { model, group, config: cfg, blocks })
    }

    /// Materialises all ten Table I paths for `(model, group)`.
    ///
    /// # Errors
    ///
    /// Returns a [`PruneError`] if the prune ratio is invalid.
    pub fn all_paths(
        &mut self,
        model: ModelId,
        group: GroupId,
        ratio: f64,
    ) -> Result<Vec<DnnPath>, PruneError> {
        PathConfig::all().into_iter().map(|cfg| self.instantiate_path(model, group, cfg, ratio)).collect()
    }

    /// Sum of FLOPs along a path (per inference sample).
    pub fn path_flops(&self, path: &DnnPath) -> u64 {
        path.blocks.iter().map(|&b| self.block(b).metrics.flops).sum()
    }

    /// Sum of parameters along a path.
    pub fn path_params(&self, path: &DnnPath) -> u64 {
        path.blocks.iter().map(|&b| self.block(b).metrics.params).sum()
    }

    /// Parameters of the *union* of blocks used by the given paths: the
    /// memory the edge actually pays, with sharing counted once (the
    /// `m(s^d)` semantics of constraint (1b)).
    pub fn unique_params<'a>(&self, paths: impl IntoIterator<Item = &'a DnnPath>) -> u64 {
        let mut seen: HashSet<BlockId> = HashSet::new();
        let mut total = 0u64;
        for p in paths {
            for &b in &p.blocks {
                if seen.insert(b) {
                    total += self.block(b).metrics.params;
                }
            }
        }
        total
    }

    /// Distinct blocks used by the given paths.
    pub fn unique_blocks<'a>(&self, paths: impl IntoIterator<Item = &'a DnnPath>) -> HashSet<BlockId> {
        let mut seen = HashSet::new();
        for p in paths {
            seen.extend(p.blocks.iter().copied());
        }
        seen
    }
}

/// Builds a pruned classifier head.
///
/// With `pruned_input` the upstream stage-4 block is pruned, so the head
/// simply consumes the narrower feature map. Otherwise (CONFIG B-pruned)
/// the features are frozen at full width and the head's own input columns
/// are magnitude-pruned, expressed structurally as a channel `Select`.
fn build_pruned_head(
    base_head: &LayerGraph,
    num_classes: usize,
    ratio: f64,
    pruned_input: bool,
) -> LayerGraph {
    let full = base_head.input_shape();
    let kept = kept_channels(full.channels, ratio);
    if pruned_input {
        let input = TensorShape::new(kept, full.height, full.width);
        let mut b = LayerGraph::builder(input);
        b.chain(LayerKind::GlobalAvgPool);
        b.chain(LayerKind::Linear { in_features: kept, out_features: num_classes, bias: true });
        b.build().expect("pruned head is trivially valid")
    } else {
        let mut b = LayerGraph::builder(full);
        b.chain(LayerKind::GlobalAvgPool);
        b.chain(LayerKind::Select { in_channels: full.channels, out_channels: kept });
        b.chain(LayerKind::Linear { in_features: kept, out_features: num_classes, bias: true });
        b.build().expect("select head is trivially valid")
    }
}

/// The ordered variant layout of a config (stages then head), for tests and
/// docs.
pub fn variant_layout(cfg: PathConfig, group: GroupId, ratio_permille: u32) -> Vec<BlockVariant> {
    let k = cfg.config.shared_prefix();
    let from_scratch = cfg.config.from_scratch();
    let mut layout: Vec<BlockVariant> = (0..NUM_STAGES)
        .map(|stage| {
            if stage < k {
                BlockVariant::Base
            } else if cfg.pruned {
                BlockVariant::Pruned { group, ratio_permille, from_scratch, pruned_input: stage > k }
            } else {
                BlockVariant::FineTuned { group, from_scratch }
            }
        })
        .collect();
    layout.push(if cfg.pruned {
        BlockVariant::PrunedHead { group, ratio_permille, pruned_input: k < NUM_STAGES }
    } else {
        BlockVariant::Head { group }
    });
    layout
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::models::resnet18;

    fn repo_with_resnet() -> (Repository, ModelId) {
        let mut r = Repository::new();
        let m = r.add_model(resnet18(60, 1000, TensorShape::new(3, 224, 224)));
        (r, m)
    }

    #[test]
    fn paths_have_five_blocks() {
        let (mut r, m) = repo_with_resnet();
        for cfg in PathConfig::all() {
            let p = r.instantiate_path(m, GroupId(0), cfg, 0.8).unwrap();
            assert_eq!(p.blocks.len(), NUM_STAGES + 1);
        }
    }

    #[test]
    fn config_b_shares_all_feature_blocks() {
        let (mut r, m) = repo_with_resnet();
        let p0 =
            r.instantiate_path(m, GroupId(0), PathConfig { config: Config::B, pruned: false }, 0.8).unwrap();
        let p1 =
            r.instantiate_path(m, GroupId(1), PathConfig { config: Config::B, pruned: false }, 0.8).unwrap();
        // All four feature blocks identical (Base); only the head differs.
        assert_eq!(&p0.blocks[..NUM_STAGES], &p1.blocks[..NUM_STAGES]);
        assert_ne!(p0.blocks[NUM_STAGES], p1.blocks[NUM_STAGES]);
        // And the head is tiny compared to a feature block.
        let head = r.block(p0.blocks[NUM_STAGES]).metrics.params;
        let stage4 = r.block(p0.blocks[NUM_STAGES - 1]).metrics.params;
        assert!(head * 100 < stage4);
    }

    #[test]
    fn same_group_same_config_shares_everything() {
        let (mut r, m) = repo_with_resnet();
        let cfg = PathConfig { config: Config::C, pruned: true };
        let p1 = r.instantiate_path(m, GroupId(0), cfg, 0.8).unwrap();
        let p2 = r.instantiate_path(m, GroupId(0), cfg, 0.8).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn config_a_shares_nothing_with_config_c() {
        let (mut r, m) = repo_with_resnet();
        let g = GroupId(0);
        let pa = r.instantiate_path(m, g, PathConfig { config: Config::A, pruned: false }, 0.8).unwrap();
        let pc = r.instantiate_path(m, g, PathConfig { config: Config::C, pruned: false }, 0.8).unwrap();
        for b in &pa.blocks[..NUM_STAGES] {
            assert!(!pc.blocks.contains(b), "scratch blocks must not be shared with fine-tuned paths");
        }
    }

    #[test]
    fn pruned_path_has_fewer_params() {
        let (mut r, m) = repo_with_resnet();
        let g = GroupId(0);
        let full = r.instantiate_path(m, g, PathConfig { config: Config::C, pruned: false }, 0.8).unwrap();
        let pruned = r.instantiate_path(m, g, PathConfig { config: Config::C, pruned: true }, 0.8).unwrap();
        assert!(r.path_params(&pruned) < r.path_params(&full));
        assert!(r.path_flops(&pruned) < r.path_flops(&full));
    }

    #[test]
    fn config_b_pruned_saves_least_compute() {
        // Fig. 3 (left): CONFIG B-pruned has the least pruned blocks, hence
        // the smallest compute-time difference vs its unpruned version.
        let (mut r, m) = repo_with_resnet();
        let g = GroupId(0);
        let mut savings = Vec::new();
        for cfg in [Config::B, Config::C, Config::D, Config::E, Config::A] {
            let full = r.instantiate_path(m, g, PathConfig { config: cfg, pruned: false }, 0.8).unwrap();
            let pr = r.instantiate_path(m, g, PathConfig { config: cfg, pruned: true }, 0.8).unwrap();
            savings.push(r.path_flops(&full) - r.path_flops(&pr));
        }
        assert!(savings[0] < savings[1], "B saves least");
        assert!(savings[1] < savings[2]);
        assert!(savings[2] < savings[3]);
        assert!(savings[3] <= savings[4], "A (everything pruned) saves most");
    }

    #[test]
    fn pruned_path_blocks_chain_shapewise() {
        let (mut r, m) = repo_with_resnet();
        let g = GroupId(0);
        for cfg in PathConfig::all() {
            let p = r.instantiate_path(m, g, cfg, 0.8).unwrap();
            for w in p.blocks.windows(2) {
                let out = r.block(w[0]).graph.output_shape();
                let inp = r.block(w[1]).graph.input_shape();
                assert_eq!(out, inp, "path {cfg} blocks must chain");
            }
            // Every path ends in 60-class logits.
            assert_eq!(r.block(*p.blocks.last().unwrap()).graph.output_shape(), TensorShape::vector(60));
        }
    }

    #[test]
    fn unique_params_counts_shared_blocks_once() {
        let (mut r, m) = repo_with_resnet();
        let cfg = PathConfig { config: Config::B, pruned: false };
        let p0 = r.instantiate_path(m, GroupId(0), cfg, 0.8).unwrap();
        let p1 = r.instantiate_path(m, GroupId(1), cfg, 0.8).unwrap();
        let both = r.unique_params([&p0, &p1]);
        // The union equals one full path plus the second head.
        let head_extra = r.block(p1.blocks[NUM_STAGES]).metrics.params;
        assert_eq!(both, r.path_params(&p0) + head_extra);
    }

    #[test]
    fn all_paths_returns_ten() {
        let (mut r, m) = repo_with_resnet();
        let paths = r.all_paths(m, GroupId(0), 0.8).unwrap();
        assert_eq!(paths.len(), 10);
        let base_count = r.blocks().iter().filter(|b| matches!(b.key.variant, BlockVariant::Base)).count();
        assert_eq!(base_count, 4, "all four stages appear as Base");
    }

    #[test]
    fn head_pruned_b_uses_select() {
        // CONFIG B-pruned: frozen full-width features, head input columns
        // selected down.
        let (mut r, m) = repo_with_resnet();
        let p =
            r.instantiate_path(m, GroupId(0), PathConfig { config: Config::B, pruned: true }, 0.8).unwrap();
        let head = r.block(p.blocks[NUM_STAGES]);
        assert!(head.graph.nodes().iter().any(|n| matches!(n.kind, LayerKind::Select { .. })));
        // 512 -> 102 kept columns: params = 102*60 + 60.
        assert_eq!(head.metrics.params, 102 * 60 + 60);
    }

    #[test]
    fn fully_pruned_head_has_narrow_input() {
        let (mut r, m) = repo_with_resnet();
        let p =
            r.instantiate_path(m, GroupId(0), PathConfig { config: Config::A, pruned: true }, 0.8).unwrap();
        let head = r.block(p.blocks[NUM_STAGES]);
        assert_eq!(head.graph.input_shape().channels, kept_channels(512, 0.8));
        assert!(!head.graph.nodes().iter().any(|n| matches!(n.kind, LayerKind::Select { .. })));
    }

    #[test]
    fn variant_layout_matches_instantiation() {
        let (mut r, m) = repo_with_resnet();
        let g = GroupId(2);
        let cfg = PathConfig { config: Config::D, pruned: true };
        let p = r.instantiate_path(m, g, cfg, 0.8).unwrap();
        let layout = variant_layout(cfg, g, 800);
        assert_eq!(layout.len(), p.blocks.len());
        for (i, &b) in p.blocks.iter().enumerate() {
            assert_eq!(r.block(b).key.variant, layout[i]);
        }
    }
}

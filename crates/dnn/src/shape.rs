//! Tensor shapes and shape arithmetic.
//!
//! All shapes are `(channels, height, width)` feature maps; the batch
//! dimension is carried separately by the callers that need it (training
//! memory estimation), because everything else in the cost model is
//! batch-linear.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Shape of a `(C, H, W)` feature map flowing between layers.
///
/// ```
/// use offloadnn_dnn::shape::TensorShape;
///
/// let s = TensorShape::new(3, 224, 224);
/// assert_eq!(s.elements(), 3 * 224 * 224);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorShape {
    /// Number of channels (feature maps).
    pub channels: usize,
    /// Spatial height.
    pub height: usize,
    /// Spatial width.
    pub width: usize,
}

impl TensorShape {
    /// Creates a new shape.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        Self { channels, height, width }
    }

    /// A flattened vector shape, as produced by global pooling (`C x 1 x 1`).
    pub fn vector(features: usize) -> Self {
        Self { channels: features, height: 1, width: 1 }
    }

    /// Total number of scalar elements.
    pub fn elements(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Number of spatial positions (`H * W`).
    pub fn spatial(&self) -> usize {
        self.height * self.width
    }

    /// Returns the shape after a convolution/pooling window with the given
    /// kernel size, stride and symmetric padding is slid over it.
    ///
    /// Uses the standard floor formula `(dim + 2*pad - kernel) / stride + 1`.
    pub fn conv_out(&self, out_channels: usize, kernel: usize, stride: usize, padding: usize) -> TensorShape {
        let h = conv_dim(self.height, kernel, stride, padding);
        let w = conv_dim(self.width, kernel, stride, padding);
        TensorShape::new(out_channels, h, w)
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.channels, self.height, self.width)
    }
}

/// Output size of one spatial dimension under a sliding window.
pub fn conv_dim(dim: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    let padded = dim + 2 * padding;
    if padded < kernel {
        return 0;
    }
    (padded - kernel) / stride + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_dim_matches_pytorch_formula() {
        // 224 input, 7x7 kernel, stride 2, padding 3 -> 112 (ResNet stem).
        assert_eq!(conv_dim(224, 7, 2, 3), 112);
        // 112 input, 3x3 maxpool stride 2 pad 1 -> 56.
        assert_eq!(conv_dim(112, 3, 2, 1), 56);
        // 3x3 stride 1 pad 1 preserves size.
        assert_eq!(conv_dim(56, 3, 1, 1), 56);
        // 1x1 stride 2 halves (floor).
        assert_eq!(conv_dim(56, 1, 2, 0), 28);
    }

    #[test]
    fn conv_dim_degenerate_window_is_zero() {
        assert_eq!(conv_dim(2, 7, 2, 0), 0);
    }

    #[test]
    fn shape_helpers() {
        let s = TensorShape::new(64, 56, 56);
        assert_eq!(s.elements(), 64 * 56 * 56);
        assert_eq!(s.spatial(), 56 * 56);
        let out = s.conv_out(128, 3, 2, 1);
        assert_eq!(out, TensorShape::new(128, 28, 28));
        assert_eq!(TensorShape::vector(512).elements(), 512);
        assert_eq!(format!("{}", s), "64x56x56");
    }
}

//! Structured channel pruning with dependency-group analysis.
//!
//! This reproduces the structural effect of DepGraph-style magnitude pruning
//! (Fang et al., CVPR 2023), which the paper applies to fine-tuned
//! layer-blocks: channels cannot be removed independently — a residual `Add`
//! forces both branches to keep the same channel set, a BatchNorm must shrink
//! with its producer, and a depthwise convolution ties its output to its
//! input. We compute the channel-coupling groups with a union-find over one
//! "channel variable" per tensor, then shrink every prunable group by the
//! requested ratio and rebuild the graph.
//!
//! We only model the *structure* (parameter/FLOP/memory consequences) of
//! pruning; the weight values themselves are irrelevant to the DOT problem.

use crate::graph::{GraphError, LayerGraph, Source};
use crate::layer::LayerKind;
use crate::shape::TensorShape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the boundary channels of a graph may be treated during pruning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PruneSpec {
    /// Fraction of channels to remove from each prunable group, in `[0, 1)`.
    pub ratio: f64,
    /// Whether the group containing the graph *input* may shrink. Set this
    /// when the upstream block is pruned with the same ratio; leave unset
    /// when the upstream block is frozen/shared.
    pub prune_input: bool,
    /// Whether the group containing the graph *output* may shrink. Set this
    /// when the downstream consumer is pruned too (or is this graph's own
    /// classifier); leave unset when a frozen block consumes the output.
    pub prune_output: bool,
}

impl PruneSpec {
    /// Prunes interior groups only, preserving both interfaces.
    pub fn interior(ratio: f64) -> Self {
        Self { ratio, prune_input: false, prune_output: false }
    }

    /// Prunes interior and output groups (first pruned block of a suffix).
    pub fn suffix_head(ratio: f64) -> Self {
        Self { ratio, prune_input: false, prune_output: true }
    }

    /// Prunes everything including the input interface (later blocks of a
    /// pruned suffix, fed by an equally pruned predecessor).
    pub fn full(ratio: f64) -> Self {
        Self { ratio, prune_input: true, prune_output: true }
    }
}

/// Error returned by [`prune`].
#[derive(Debug, Clone, PartialEq)]
pub enum PruneError {
    /// Ratio outside `[0, 1)`.
    InvalidRatio(f64),
    /// Rebuilding the pruned graph failed (indicates an internal bug).
    Rebuild(GraphError),
}

impl fmt::Display for PruneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PruneError::InvalidRatio(r) => write!(f, "prune ratio {r} outside [0, 1)"),
            PruneError::Rebuild(e) => write!(f, "pruned graph failed validation: {e}"),
        }
    }
}

impl std::error::Error for PruneError {}

/// Outcome of pruning a graph: the rebuilt graph plus an audit trail.
#[derive(Debug, Clone)]
pub struct Pruned {
    /// The pruned graph.
    pub graph: LayerGraph,
    /// Number of channel-coupling groups found.
    pub groups: usize,
    /// Number of groups actually shrunk.
    pub pruned_groups: usize,
    /// Parameters before pruning.
    pub params_before: u64,
    /// Parameters after pruning.
    pub params_after: u64,
    /// FLOPs before pruning.
    pub flops_before: u64,
    /// FLOPs after pruning.
    pub flops_after: u64,
}

impl Pruned {
    /// Fraction of parameters removed.
    pub fn param_reduction(&self) -> f64 {
        1.0 - self.params_after as f64 / self.params_before.max(1) as f64
    }

    /// Fraction of FLOPs removed.
    pub fn flop_reduction(&self) -> f64 {
        1.0 - self.flops_after as f64 / self.flops_before.max(1) as f64
    }
}

/// Number of channels kept when pruning `channels` by `ratio`.
///
/// Deterministic and monotone, so two blocks pruned with the same ratio agree
/// on their shared interface width.
pub fn kept_channels(channels: usize, ratio: f64) -> usize {
    (((1.0 - ratio) * channels as f64).round() as usize).max(1)
}

/// Channel variable indices: 0 is the graph input, `i + 1` is node `i`'s
/// output.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self { parent: (0..n).collect() }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

fn var_of(src: Source) -> usize {
    match src {
        Source::Input => 0,
        Source::Node(j) => j + 1,
    }
}

/// Computes channel-coupling groups. Returns, per variable, its group root,
/// plus the set of roots that are *structurally prunable* (produced by
/// convolutions rather than classifier outputs or pooled class vectors).
fn analyze(graph: &LayerGraph) -> (UnionFind, Vec<bool>) {
    let n_vars = graph.len() + 1;
    let mut uf = UnionFind::new(n_vars);
    // conv_backed[v]: variable v's width is set by at least one conv output,
    // so shrinking it is a legal structured pruning operation.
    let mut conv_backed = vec![false; n_vars];

    for (i, node) in graph.nodes().iter().enumerate() {
        let out = i + 1;
        match node.kind {
            LayerKind::Conv2d { in_channels, groups, .. } => {
                if groups == in_channels && groups > 1 {
                    // Depthwise: output channels tied to input channels.
                    uf.union(out, var_of(node.inputs[0]));
                }
                conv_backed[out] = true;
            }
            LayerKind::BatchNorm2d { .. }
            | LayerKind::Activation
            | LayerKind::MaxPool2d { .. }
            | LayerKind::GlobalAvgPool => {
                uf.union(out, var_of(node.inputs[0]));
            }
            LayerKind::Add => {
                uf.union(var_of(node.inputs[0]), var_of(node.inputs[1]));
                uf.union(out, var_of(node.inputs[0]));
            }
            LayerKind::Linear { .. } | LayerKind::Select { .. } => {
                // Output width is semantic (classes / explicit selection):
                // a fresh, non-prunable variable.
            }
        }
    }

    // Propagate conv-backing to group roots.
    let mut root_conv_backed = vec![false; n_vars];
    let backed: Vec<usize> = conv_backed.iter().enumerate().filter_map(|(v, &b)| b.then_some(v)).collect();
    for v in backed {
        let r = uf.find(v);
        root_conv_backed[r] = true;
    }
    (uf, root_conv_backed)
}

/// Prunes `graph` according to `spec`, returning the rebuilt graph and an
/// audit report.
///
/// # Errors
///
/// Returns [`PruneError::InvalidRatio`] if `spec.ratio` is outside `[0, 1)`.
pub fn prune(graph: &LayerGraph, spec: PruneSpec) -> Result<Pruned, PruneError> {
    if !(0.0..1.0).contains(&spec.ratio) {
        return Err(PruneError::InvalidRatio(spec.ratio));
    }

    let (mut uf, prunable_root) = analyze(graph);
    let n_vars = graph.len() + 1;
    let input_root = uf.find(0);
    let output_root = uf.find(n_vars - 1);

    // Original channel width per variable.
    let width = |v: usize, g: &LayerGraph| -> usize {
        if v == 0 {
            g.input_shape().channels
        } else {
            g.shape_of(v - 1).channels
        }
    };

    // Decide the new width of each group root.
    let mut new_width = vec![0usize; n_vars];
    for v in 0..n_vars {
        let r = uf.find(v);
        let w = width(v, graph);
        let mut prunable = prunable_root[r];
        if r == input_root {
            // The input's producer conv lives in the *previous* block, so
            // conv-backing cannot be observed here: the caller's flag is
            // authoritative (true only when the upstream block is pruned
            // with the same ratio).
            prunable = spec.prune_input;
        }
        if r == output_root && !spec.prune_output {
            prunable = false;
        }
        let target = if prunable { kept_channels(w, spec.ratio) } else { w };
        // All members of a group share a width; keep the min for safety
        // (they are equal in well-formed graphs).
        if new_width[r] == 0 || target < new_width[r] {
            new_width[r] = target;
        }
    }

    let mut pruned_groups = 0usize;
    let mut seen_roots = std::collections::HashSet::new();
    for v in 0..n_vars {
        let r = uf.find(v);
        if seen_roots.insert(r) && new_width[r] < width(v, graph) {
            pruned_groups += 1;
        }
    }
    let groups = seen_roots.len();

    // Rebuild with new widths, propagating shapes as we go.
    let new_input_channels = new_width[uf.find(0)];
    let old_input = graph.input_shape();
    let new_input_shape = TensorShape::new(new_input_channels, old_input.height, old_input.width);
    let mut b = LayerGraph::builder(new_input_shape);
    let mut new_shapes: Vec<TensorShape> = Vec::with_capacity(graph.len());
    let shape_of_src = |src: Source, shapes: &[TensorShape], input: TensorShape| -> TensorShape {
        match src {
            Source::Input => input,
            Source::Node(j) => shapes[j],
        }
    };

    for (i, node) in graph.nodes().iter().enumerate() {
        let in_shape = shape_of_src(node.inputs[0], &new_shapes, new_input_shape);
        let out_w = new_width[uf.find(i + 1)];
        let new_kind = match node.kind {
            LayerKind::Conv2d { in_channels, kernel, stride, padding, groups, bias, .. } => {
                let depthwise = groups == in_channels && groups > 1;
                LayerKind::Conv2d {
                    in_channels: in_shape.channels,
                    out_channels: out_w,
                    kernel,
                    stride,
                    padding,
                    groups: if depthwise { in_shape.channels } else { groups },
                    bias,
                }
            }
            LayerKind::BatchNorm2d { .. } => LayerKind::BatchNorm2d { channels: in_shape.channels },
            LayerKind::Linear { out_features, bias, .. } => {
                LayerKind::Linear { in_features: in_shape.elements(), out_features, bias }
            }
            LayerKind::Select { out_channels, .. } => {
                LayerKind::Select { in_channels: in_shape.channels, out_channels }
            }
            other @ (LayerKind::Activation
            | LayerKind::MaxPool2d { .. }
            | LayerKind::GlobalAvgPool
            | LayerKind::Add) => other,
        };
        let id = if matches!(new_kind, LayerKind::Add) {
            b.add(node.inputs[0], node.inputs[1])
        } else {
            b.with_input(new_kind, node.inputs[0])
        };
        debug_assert_eq!(id, i);
        new_shapes.push(new_kind.output_shape(in_shape));
    }

    let rebuilt = b.build().map_err(PruneError::Rebuild)?;
    Ok(Pruned {
        groups,
        pruned_groups,
        params_before: graph.params(),
        params_after: rebuilt.params(),
        flops_before: graph.flops(),
        flops_after: rebuilt.flops(),
        graph: rebuilt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{mobilenet_v2, resnet18};

    fn stage(idx: usize) -> LayerGraph {
        resnet18(60, 1000, TensorShape::new(3, 224, 224)).blocks[idx].clone()
    }

    #[test]
    fn kept_channels_is_monotone_and_positive() {
        assert_eq!(kept_channels(512, 0.8), 102);
        assert_eq!(kept_channels(64, 0.8), 13);
        assert_eq!(kept_channels(1, 0.99), 1);
        assert!(kept_channels(100, 0.5) > kept_channels(100, 0.8));
    }

    #[test]
    fn invalid_ratio_rejected() {
        let g = stage(1);
        assert!(matches!(prune(&g, PruneSpec::interior(1.0)), Err(PruneError::InvalidRatio(_))));
        assert!(matches!(prune(&g, PruneSpec::interior(-0.1)), Err(PruneError::InvalidRatio(_))));
    }

    #[test]
    fn interior_pruning_preserves_interfaces() {
        let g = stage(1); // stage2: 64ch in, 128ch out
        let p = prune(&g, PruneSpec::interior(0.8)).unwrap();
        assert_eq!(p.graph.input_shape(), g.input_shape());
        assert_eq!(p.graph.output_shape(), g.output_shape());
        assert!(p.params_after < p.params_before);
    }

    #[test]
    fn residual_groups_keep_add_consistent() {
        // After pruning, every Add must still see equal shapes — the
        // builder would reject the graph otherwise, so success implies
        // group consistency.
        for idx in 0..4 {
            let g = stage(idx);
            let p = prune(&g, PruneSpec::suffix_head(0.8)).unwrap();
            assert!(p.graph.len() == g.len(), "node count preserved");
        }
    }

    #[test]
    fn eighty_percent_prune_removes_most_parameters() {
        // Fully pruning a stage by 80% should remove ~96% of conv params
        // (both in and out channels shrink) in interior convs; with frozen
        // input interface the reduction is somewhat less but still large.
        let g = stage(2);
        let p = prune(&g, PruneSpec::suffix_head(0.8)).unwrap();
        assert!(p.param_reduction() > 0.85, "got {}", p.param_reduction());
        assert!(p.flop_reduction() > 0.80, "got {}", p.flop_reduction());
    }

    #[test]
    fn full_prune_shrinks_input_interface() {
        let g = stage(2);
        let p = prune(&g, PruneSpec::full(0.8)).unwrap();
        assert_eq!(p.graph.input_shape().channels, kept_channels(g.input_shape().channels, 0.8));
    }

    #[test]
    fn classifier_output_never_pruned() {
        // Build a small conv + GAP + Linear graph: the class dimension must
        // survive even a full prune.
        let mut b = LayerGraph::builder(TensorShape::new(16, 8, 8));
        b.chain(crate::layer::LayerKind::conv(16, 32, 3, 1, 1));
        b.chain(crate::layer::LayerKind::BatchNorm2d { channels: 32 });
        b.chain(crate::layer::LayerKind::Activation);
        b.chain(crate::layer::LayerKind::GlobalAvgPool);
        b.chain(crate::layer::LayerKind::Linear { in_features: 32, out_features: 60, bias: true });
        let g = b.build().unwrap();
        let p = prune(&g, PruneSpec::full(0.8)).unwrap();
        // Output is the 60-class logits; must be intact.
        assert_eq!(p.graph.output_shape(), TensorShape::vector(60));
        // The conv group (feeding the classifier through GAP) did shrink.
        assert!(p.params_after < p.params_before);
    }

    #[test]
    fn zero_ratio_is_identity_on_costs() {
        let g = stage(1);
        let p = prune(&g, PruneSpec::full(0.0)).unwrap();
        assert_eq!(p.params_after, p.params_before);
        assert_eq!(p.flops_after, p.flops_before);
        assert_eq!(p.pruned_groups, 0);
    }

    #[test]
    fn chained_pruned_stages_agree_on_interface() {
        // Stage 2 pruned with suffix_head, stage 3 with full: the interface
        // widths must match so a pruned path chains correctly.
        let g2 = stage(1);
        let g3 = stage(2);
        let p2 = prune(&g2, PruneSpec::suffix_head(0.8)).unwrap();
        let p3 = prune(&g3, PruneSpec::full(0.8)).unwrap();
        assert_eq!(p2.graph.output_shape(), p3.graph.input_shape());
    }

    #[test]
    fn mobilenet_depthwise_groups_prune_consistently() {
        let m = mobilenet_v2(60, 1000, TensorShape::new(3, 224, 224));
        for blk in &m.blocks {
            let p = prune(blk, PruneSpec::interior(0.5)).unwrap();
            assert!(p.params_after <= p.params_before);
            // Depthwise convs must keep groups == in_channels.
            for node in p.graph.nodes() {
                if let LayerKind::Conv2d { in_channels, groups, .. } = node.kind {
                    assert!(groups == 1 || groups == in_channels);
                }
            }
        }
    }

    #[test]
    fn report_reductions_consistent() {
        let g = stage(2);
        let p = prune(&g, PruneSpec::suffix_head(0.8)).unwrap();
        assert!((0.0..=1.0).contains(&p.param_reduction()));
        assert!((0.0..=1.0).contains(&p.flop_reduction()));
        assert!(p.groups >= p.pruned_groups);
    }
}

//! DNN structure substrate for the OffloaDNN reproduction.
//!
//! This crate models everything the DOT problem needs to know about deep
//! neural networks *structurally*: layers with exact parameter/FLOP
//! accounting, segmented reference architectures (ResNet-18/34,
//! MobileNetV2), DepGraph-style structured pruning, and a repository of
//! interned block variants from which dynamic DNN structures and their
//! paths (`pi^d_tau`) are composed.
//!
//! No tensors are ever allocated and no weights exist: the OffloaDNN
//! optimisation consumes only per-block cost scalars, which this crate
//! derives analytically (see `offloadnn-profiler` for the hardware mapping).
//!
//! # Example
//!
//! ```
//! use offloadnn_dnn::models::resnet18;
//! use offloadnn_dnn::repository::Repository;
//! use offloadnn_dnn::block::GroupId;
//! use offloadnn_dnn::shape::TensorShape;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut repo = Repository::new();
//! let model = repo.add_model(resnet18(60, 1000, TensorShape::new(3, 224, 224)));
//! let paths = repo.all_paths(model, GroupId(0), 0.8)?;
//! assert_eq!(paths.len(), 10); // Table I: CONFIG A..E, plus pruned versions
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod block;
pub mod config;
pub mod graph;
pub mod layer;
pub mod models;
pub mod prune;
pub mod repository;
pub mod shape;
pub mod summary;

pub use block::{BlockEntry, BlockId, BlockKey, BlockMetrics, BlockVariant, GroupId, ModelId, Precision};
pub use config::{Config, PathConfig};
pub use graph::{GraphError, LayerGraph};
pub use layer::LayerKind;
pub use models::{ModelFamily, SegmentedModel};
pub use prune::{prune, PruneError, PruneSpec, Pruned};
pub use repository::{DnnPath, Repository};
pub use shape::TensorShape;

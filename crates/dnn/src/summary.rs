//! Model summaries: per-layer and per-block tables of shapes, parameters
//! and FLOPs (the `torchsummary` view of a [`SegmentedModel`]), used by
//! the examples and handy when auditing the analytic cost model.

use crate::graph::{LayerGraph, Source};
use crate::models::SegmentedModel;
use std::fmt::Write as _;

/// One summary row.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerRow {
    /// Layer description ("conv3x3(64->64, s1)").
    pub layer: String,
    /// Output shape ("64x56x56").
    pub output: String,
    /// Parameter count.
    pub params: u64,
    /// FLOPs for one sample.
    pub flops: u64,
}

/// Per-layer rows of a single graph.
pub fn graph_rows(g: &LayerGraph) -> Vec<LayerRow> {
    g.nodes()
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let input = match n.inputs[0] {
                Source::Input => g.input_shape(),
                Source::Node(j) => g.shape_of(j),
            };
            LayerRow {
                layer: n.kind.to_string(),
                output: g.shape_of(i).to_string(),
                params: n.kind.params(),
                flops: n.kind.flops(input),
            }
        })
        .collect()
}

/// Renders the per-block summary of a segmented model.
pub fn render(model: &SegmentedModel, per_layer: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} (width {:.2}, input {}): {} params, {:.2} GFLOPs",
        model.family,
        model.width(),
        model.input,
        model.params(),
        model.flops() as f64 / 1e9
    );
    let blocks: Vec<(&str, &LayerGraph)> = model
        .blocks
        .iter()
        .enumerate()
        .map(|(i, b)| match i {
            0 => ("block1 (stem+stage1)", b),
            1 => ("block2 (stage2)", b),
            2 => ("block3 (stage3)", b),
            _ => ("block4 (stage4)", b),
        })
        .chain(std::iter::once(("head (classifier)", &model.head)))
        .collect();
    for (name, g) in blocks {
        let _ = writeln!(
            out,
            "  {name:22} out {:12} {:>12} params {:>10.1} MFLOPs {:>3} layers",
            g.output_shape().to_string(),
            g.params(),
            g.flops() as f64 / 1e6,
            g.len()
        );
        if per_layer {
            for row in graph_rows(g) {
                let _ = writeln!(
                    out,
                    "    {:34} {:>12} {:>12} params {:>12} FLOPs",
                    row.layer, row.output, row.params, row.flops
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::resnet18;
    use crate::shape::TensorShape;

    #[test]
    fn rows_sum_to_graph_totals() {
        let m = resnet18(60, 1000, TensorShape::new(3, 224, 224));
        for g in m.blocks.iter().chain(std::iter::once(&m.head)) {
            let rows = graph_rows(g);
            assert_eq!(rows.iter().map(|r| r.params).sum::<u64>(), g.params());
            assert_eq!(rows.iter().map(|r| r.flops).sum::<u64>(), g.flops());
            assert_eq!(rows.len(), g.len());
        }
    }

    #[test]
    fn render_contains_blocks_and_totals() {
        let m = resnet18(60, 1000, TensorShape::new(3, 224, 224));
        let s = render(&m, false);
        assert!(s.contains("resnet18"));
        assert!(s.contains("block1 (stem+stage1)"));
        assert!(s.contains("head (classifier)"));
        // 11.2M params appears in the headline.
        assert!(s.contains(&m.params().to_string()));
    }

    #[test]
    fn per_layer_mode_lists_every_layer() {
        let m = resnet18(10, 1000, TensorShape::new(3, 224, 224));
        let s = render(&m, true);
        let layer_lines = s.lines().filter(|l| l.starts_with("    ")).count();
        let expected: usize = m.blocks.iter().map(|b| b.len()).sum::<usize>() + m.head.len();
        assert_eq!(layer_lines, expected);
    }
}

//! Property-based tests of the structured-pruning substrate.

use offloadnn_dnn::config::PathConfig;
use offloadnn_dnn::models::{mobilenet_v2, resnet18, resnet34};
use offloadnn_dnn::prune::{kept_channels, prune, PruneSpec};
use offloadnn_dnn::repository::Repository;
use offloadnn_dnn::{GroupId, TensorShape};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pruning_never_increases_cost(ratio in 0.0f64..0.95, stage in 0usize..4, width in 500u32..1200) {
        let m = resnet18(60, width, TensorShape::new(3, 224, 224));
        let p = prune(&m.blocks[stage], PruneSpec::suffix_head(ratio)).unwrap();
        prop_assert!(p.params_after <= p.params_before);
        prop_assert!(p.flops_after <= p.flops_before);
        prop_assert!(p.graph.len() == m.blocks[stage].len(), "structure preserved");
    }

    #[test]
    fn pruning_is_monotone_in_ratio(stage in 0usize..4, r1 in 0.05f64..0.45, dr in 0.05f64..0.45) {
        let m = resnet18(60, 1000, TensorShape::new(3, 224, 224));
        let lo = prune(&m.blocks[stage], PruneSpec::suffix_head(r1)).unwrap();
        let hi = prune(&m.blocks[stage], PruneSpec::suffix_head(r1 + dr)).unwrap();
        prop_assert!(hi.params_after <= lo.params_after, "more pruning, fewer params");
        prop_assert!(hi.flops_after <= lo.flops_after);
    }

    #[test]
    fn chained_stage_interfaces_always_agree(ratio in 0.05f64..0.9, width in 500u32..1200) {
        // A full pruned suffix: every stage boundary must line up.
        let m = resnet18(60, width, TensorShape::new(3, 224, 224));
        let mut prev_out = None;
        for (i, blk) in m.blocks.iter().enumerate() {
            let spec = if i == 0 { PruneSpec::suffix_head(ratio) } else { PruneSpec::full(ratio) };
            let p = prune(blk, spec).unwrap();
            if let Some(out) = prev_out {
                prop_assert_eq!(p.graph.input_shape(), out, "stage {} interface", i);
            }
            prev_out = Some(p.graph.output_shape());
        }
    }

    #[test]
    fn kept_channels_consistent_and_positive(c in 1usize..4096, ratio in 0.0f64..0.999) {
        let k = kept_channels(c, ratio);
        prop_assert!(k >= 1);
        prop_assert!(k <= c);
        // Monotone in channels for a fixed ratio.
        prop_assert!(kept_channels(c + 8, ratio) >= k);
    }

    #[test]
    fn all_table_i_paths_instantiate_for_any_ratio(ratio in 0.05f64..0.95) {
        let mut repo = Repository::new();
        let m = repo.add_model(resnet18(60, 1000, TensorShape::new(3, 224, 224)));
        for cfg in PathConfig::all() {
            let p = repo.instantiate_path(m, GroupId(0), cfg, ratio).unwrap();
            prop_assert_eq!(p.blocks.len(), 5);
            for w in p.blocks.windows(2) {
                prop_assert_eq!(
                    repo.block(w[0]).graph.output_shape(),
                    repo.block(w[1]).graph.input_shape()
                );
            }
        }
    }

    #[test]
    fn every_family_prunes_cleanly(ratio in 0.1f64..0.9, family in 0usize..3) {
        let input = TensorShape::new(3, 224, 224);
        let m = match family {
            0 => resnet18(60, 1000, input),
            1 => resnet34(60, 1000, input),
            _ => mobilenet_v2(60, 1000, input),
        };
        for blk in &m.blocks {
            let p = prune(blk, PruneSpec::interior(ratio)).unwrap();
            prop_assert_eq!(p.graph.input_shape(), blk.input_shape());
            prop_assert_eq!(p.graph.output_shape(), blk.output_shape());
        }
    }
}

//! Loopback load generator for the `offloadnn-net` TCP frontend.
//!
//! Starts a [`NetServer`] on an ephemeral loopback port, drives it with
//! N concurrent [`Client`] connections pipelining admission submits,
//! then drains and cross-checks the end-to-end conservation invariant:
//!
//! ```text
//! offered = outcomes received + server-errored + transport-errored
//! server.submitted = outcomes received  (per verdict class, exactly)
//! ```
//!
//! Exits non-zero on any violation, so CI can gate on it.
//!
//! ```text
//! cargo run --release -p offloadnn-net --bin net_loadgen -- \
//!     --requests 20000 --clients 4 --shards 4
//! ```

use offloadnn_core::scenario::small_scenario;
use offloadnn_core::task::TaskId;
use offloadnn_net::{AnyServer, Client, ClientConfig, Frontend, NetConfig, NetError};
use offloadnn_plancache::PlanCacheConfig;
use offloadnn_serve::{Outcome, ServiceConfig, ShapePool};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

const USAGE: &str = "\
net_loadgen — loopback load generator for the offloadnn-net TCP frontend

USAGE: net_loadgen [OPTIONS]

OPTIONS (all optional; defaults in brackets):
  --frontend F        TCP frontend serving the run:
                      'threads' (reader+writer pair per
                      connection) or 'reactor' (fixed epoll
                      event-loop pool)                    [threads]
  --requests N        total submits across all clients    [20000]
  --clients N         concurrent client connections; the
                      server's connection limit is raised
                      to fit, so 512+ works against the
                      reactor frontend                    [4]
  --window N          per-client pipeline depth           [128]
  --shards N          service worker shards               [4]
  --ues N             UEs in the reference scenario       [5]
  --deadline-ms N     client-shipped admission budget, ms
                      (0 = server policy deadline)        [0]
  --max-active N      admitted tasks kept per client
                      before the oldest departs           [64]
  --snapshot-every N  interleave a metrics snapshot every
                      N submits per client (0 = never)    [0]
  --queue-capacity N  per-shard ingress queue bound       [1024]
  --batch-max N       max requests per solver round       [64]
  --batch-window-us N batch assembly window, µs           [2000]
  --seed N            RNG seed (task mix)                 [7]
  --scale-script S    comma-separated at:shards steps, e.g.
                      \"5000:8,15000:2\" — a control client
                      reshards the live server to `shards`
                      once `at` submits have been offered
                      across all clients                  [none]
  --shape-skew S      Zipf exponent of the task-shape mix;
                      0 keeps the uniform prototype draw  [0]
  --shape-pool N      distinct shapes in the Zipf pool    [64]
  --plan-cache B      true|false — enable the server-side
                      admission plan cache                [false]
  -h, --help          print this help
";

struct Args {
    frontend: Frontend,
    requests: u64,
    clients: usize,
    window: usize,
    shards: usize,
    ues: usize,
    deadline_ms: u64,
    max_active: usize,
    snapshot_every: u64,
    queue_capacity: usize,
    batch_max: usize,
    batch_window_us: u64,
    seed: u64,
    scale_script: Vec<(u64, u32)>,
    shape_skew: f64,
    shape_pool: usize,
    plan_cache: bool,
}

impl Default for Args {
    fn default() -> Self {
        let s = ServiceConfig::default();
        Self {
            frontend: Frontend::default(),
            requests: 20_000,
            clients: 4,
            window: 128,
            shards: s.shards,
            ues: 5,
            deadline_ms: 0,
            max_active: 64,
            snapshot_every: 0,
            queue_capacity: s.queue_capacity,
            batch_max: s.batch_max,
            batch_window_us: s.batch_window.as_micros() as u64,
            seed: 7,
            scale_script: Vec::new(),
            shape_skew: 0.0,
            shape_pool: 64,
            plan_cache: false,
        }
    }
}

/// Parses `"at:shards,at:shards"` into scale-script steps.
fn parse_scale_script(value: &str) -> Result<Vec<(u64, u32)>, String> {
    value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|step| {
            let (at, shards) =
                step.split_once(':').ok_or_else(|| format!("scale step {step:?}: expected at:shards"))?;
            let at: u64 = at.trim().parse().map_err(|e| format!("scale step {step:?}: {e}"))?;
            let shards: u32 = shards.trim().parse().map_err(|e| format!("scale step {step:?}: {e}"))?;
            if shards == 0 {
                return Err(format!("scale step {step:?}: target must be at least one shard"));
            }
            Ok((at, shards))
        })
        .collect()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "-h" || flag == "--help" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        let value = it.next().ok_or_else(|| format!("{flag}: missing value"))?;
        let bad = |e: &dyn std::fmt::Display| format!("{flag} {value}: {e}");
        match flag.as_str() {
            "--frontend" => args.frontend = value.parse().map_err(|e| bad(&e))?,
            "--requests" => args.requests = value.parse().map_err(|e| bad(&e))?,
            "--clients" => args.clients = value.parse().map_err(|e| bad(&e))?,
            "--window" => args.window = value.parse().map_err(|e| bad(&e))?,
            "--shards" => args.shards = value.parse().map_err(|e| bad(&e))?,
            "--ues" => args.ues = value.parse().map_err(|e| bad(&e))?,
            "--deadline-ms" => args.deadline_ms = value.parse().map_err(|e| bad(&e))?,
            "--max-active" => args.max_active = value.parse().map_err(|e| bad(&e))?,
            "--snapshot-every" => args.snapshot_every = value.parse().map_err(|e| bad(&e))?,
            "--queue-capacity" => args.queue_capacity = value.parse().map_err(|e| bad(&e))?,
            "--batch-max" => args.batch_max = value.parse().map_err(|e| bad(&e))?,
            "--batch-window-us" => args.batch_window_us = value.parse().map_err(|e| bad(&e))?,
            "--seed" => args.seed = value.parse().map_err(|e| bad(&e))?,
            "--scale-script" => args.scale_script = parse_scale_script(&value)?,
            "--shape-skew" => args.shape_skew = value.parse().map_err(|e| bad(&e))?,
            "--shape-pool" => args.shape_pool = value.parse().map_err(|e| bad(&e))?,
            "--plan-cache" => args.plan_cache = value.parse().map_err(|e| bad(&e))?,
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    if args.clients == 0 {
        return Err("--clients must be >= 1".into());
    }
    if args.window == 0 {
        return Err("--window must be >= 1".into());
    }
    Ok(args)
}

/// Per-client verdict tally, observed through the wire.
#[derive(Debug, Default, Clone, Copy)]
struct Tally {
    admitted: u64,
    rejected: u64,
    shed: u64,
    expired: u64,
    server_error: u64,
    transport_error: u64,
}

impl Tally {
    fn outcomes(&self) -> u64 {
        self.admitted + self.rejected + self.shed + self.expired
    }

    fn merge(&mut self, o: Tally) {
        self.admitted += o.admitted;
        self.rejected += o.rejected;
        self.shed += o.shed;
        self.expired += o.expired;
        self.server_error += o.server_error;
        self.transport_error += o.transport_error;
    }
}

/// How long a verdict may stay outstanding before the run declares the
/// connection wedged (counts as a transport error, never hangs).
const VERDICT_TIMEOUT: Duration = Duration::from_secs(30);

#[allow(clippy::too_many_arguments)]
fn run_client(
    addr: std::net::SocketAddr,
    client_idx: usize,
    requests: u64,
    args: &Args,
    protos: &[(offloadnn_core::task::Task, Vec<offloadnn_core::instance::PathOption>)],
    shapes: Option<&ShapePool>,
    offered: &AtomicU64,
) -> (Tally, u64) {
    let client = match Client::connect(addr, ClientConfig::default()) {
        Ok(c) => c,
        Err(_) => {
            offered.fetch_add(requests, Ordering::Relaxed);
            let t = Tally { transport_error: requests, ..Tally::default() };
            return (t, 0);
        }
    };
    let deadline = (args.deadline_ms > 0).then(|| Duration::from_millis(args.deadline_ms));
    let mut rng = StdRng::seed_from_u64(args.seed ^ (client_idx as u64).wrapping_mul(0x9E37_79B9));
    let mut tally = Tally::default();
    let mut departed = 0u64;
    let mut pending = VecDeque::new();
    let mut active: VecDeque<TaskId> = VecDeque::new();

    let resolve = |p: offloadnn_net::PendingVerdict, tally: &mut Tally, active: &mut VecDeque<TaskId>| {
        let task = p.task;
        match p.wait_timeout(VERDICT_TIMEOUT) {
            Ok(Outcome::Admitted { .. }) => {
                tally.admitted += 1;
                active.push_back(task);
            }
            Ok(Outcome::Rejected { .. }) => tally.rejected += 1,
            Ok(Outcome::Shed { .. }) => tally.shed += 1,
            Ok(Outcome::Expired { .. }) => tally.expired += 1,
            Err(NetError::Server(_)) => tally.server_error += 1,
            Err(_) => tally.transport_error += 1,
        }
    };

    for i in 0..requests {
        // With the Zipf pool active, popular shape ranks repeat
        // bit-identically (the same jitter every draw) across every
        // client, so the server-side plan cache has something to hit.
        let (proto, jitter) = match shapes {
            Some(pool) => {
                let (proto, priority, rate) = pool.draw(&mut rng);
                (&protos[proto], Some((priority, rate)))
            }
            None => (&protos[rng.random_range(0..protos.len())], None),
        };
        let mut task = proto.0.clone();
        if let Some((priority, rate)) = jitter {
            task.priority = (task.priority * priority).clamp(0.05, 1.0);
            task.request_rate *= rate;
        }
        // Disjoint id spaces keep departures routable per client.
        task.id = TaskId(u32::try_from(client_idx as u64 * 100_000_000 + i).unwrap_or(u32::MAX));
        match client.submit(task, proto.1.clone(), deadline) {
            Ok(p) => pending.push_back(p),
            Err(_) => tally.transport_error += 1,
        }
        offered.fetch_add(1, Ordering::Relaxed);
        if pending.len() >= args.window {
            if let Some(p) = pending.pop_front() {
                resolve(p, &mut tally, &mut active);
            }
        }
        while args.max_active > 0 && active.len() > args.max_active {
            if let Some(id) = active.pop_front() {
                if client.depart(id).is_ok() {
                    departed += 1;
                }
            }
        }
        if args.snapshot_every > 0 && i % args.snapshot_every == args.snapshot_every - 1 {
            let _ = client.snapshot();
        }
    }
    while let Some(p) = pending.pop_front() {
        resolve(p, &mut tally, &mut active);
    }
    client.close();
    (tally, departed)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let service_config = ServiceConfig {
        shards: args.shards,
        queue_capacity: args.queue_capacity,
        batch_max: args.batch_max,
        batch_window: Duration::from_micros(args.batch_window_us),
        plan_cache: args.plan_cache.then(PlanCacheConfig::default),
        ..ServiceConfig::default()
    };
    if let Err(e) = service_config.validate() {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }

    let scenario = small_scenario(args.ues);
    let protos: Vec<_> =
        scenario.instance.tasks.iter().cloned().zip(scenario.instance.options.iter().cloned()).collect();
    let shapes = (args.shape_skew > 0.0)
        .then(|| ShapePool::new(args.shape_pool, args.shape_skew, protos.len(), args.seed));

    // Raise the connection limit to fit the requested client fleet (+
    // the control connection and the shutdown wake), so --clients 512
    // exercises concurrency rather than the TooManyConnections path.
    let net_config = NetConfig {
        max_connections: NetConfig::default().max_connections.max(args.clients + 8),
        ..NetConfig::default()
    };
    let server = match AnyServer::start(
        args.frontend,
        ("127.0.0.1", 0),
        net_config,
        service_config,
        &scenario.instance,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: failed to start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    println!(
        "net_loadgen: frontend {}, {} requests, {} concurrent connection(s) x window {}, {} shard(s), seed {} — server {addr}",
        args.frontend, args.requests, args.clients, args.window, args.shards, args.seed
    );
    if args.shape_skew > 0.0 {
        println!(
            "shapes: Zipf skew {:.2} over a pool of {} deterministic shapes (plan cache {})",
            args.shape_skew,
            args.shape_pool,
            if args.plan_cache { "on" } else { "off" },
        );
    }

    let started = Instant::now();
    let per_client = args.requests / args.clients as u64;
    let remainder = args.requests % args.clients as u64;
    let (mut tally, mut departed) = (Tally::default(), 0u64);
    let offered = AtomicU64::new(0);
    let clients_done = AtomicBool::new(false);
    let mut scale_errors = 0u64;
    let mut reshards: Vec<offloadnn_net::codec::ScaleResponse> = Vec::new();
    std::thread::scope(|scope| {
        // A dedicated control connection walks the scale script while the
        // load clients pipeline submits: each step fires once the global
        // offered count passes its threshold (or immediately once every
        // client has finished, so trailing steps still run).
        let controller = (!args.scale_script.is_empty()).then(|| {
            let (script, offered, clients_done) = (&args.scale_script, &offered, &clients_done);
            scope.spawn(move || {
                let mut responses = Vec::new();
                let mut errors = 0u64;
                let Ok(client) = Client::connect(addr, ClientConfig::default()) else {
                    return (responses, script.len() as u64);
                };
                let mut script = script.clone();
                script.sort_unstable();
                for (at, shards) in script {
                    while offered.load(Ordering::Relaxed) < at && !clients_done.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    match client.scale_to(shards) {
                        Ok(resp) => responses.push(resp),
                        Err(e) => {
                            eprintln!("error: scale_to({shards}) failed: {e}");
                            errors += 1;
                        }
                    }
                }
                client.close();
                (responses, errors)
            })
        });
        let handles: Vec<_> = (0..args.clients)
            .map(|idx| {
                let share = per_client + u64::from((idx as u64) < remainder);
                let (args, protos, offered) = (&args, &protos, &offered);
                let shapes = shapes.as_ref();
                scope.spawn(move || run_client(addr, idx, share, args, protos, shapes, offered))
            })
            .collect();
        for h in handles {
            let (t, d) = h.join().expect("client thread");
            tally.merge(t);
            departed += d;
        }
        clients_done.store(true, Ordering::Relaxed);
        if let Some(c) = controller {
            let (responses, errors) = c.join().expect("scale controller thread");
            reshards = responses;
            scale_errors = errors;
        }
    });
    let wall = started.elapsed();

    let report = server.shutdown();
    let m = &report.metrics;
    let submit_rate = args.requests as f64 / wall.as_secs_f64().max(1e-9);

    println!("\n— run —");
    println!(
        "wall {:.3?}   offered {}   {:.0} submits/s   departed {departed}",
        wall, args.requests, submit_rate
    );
    println!(
        "outcomes: admitted {}  rejected {}  shed {}  expired {}  server-err {}  transport-err {}",
        tally.admitted, tally.rejected, tally.shed, tally.expired, tally.server_error, tally.transport_error
    );
    for r in &reshards {
        println!(
            "reshard:  {} -> {} shards, {} in-flight tasks migrated (generation {})",
            r.from_shards, r.to_shards, r.migrated, r.generation
        );
    }
    println!("\n— server (post-drain) —\n{m}");
    if let Some(pc) = &report.plan_cache {
        println!(
            "plan cache: hit rate {:.1}% ({} hits, {} negative, {} misses, {} evictions, {} invalidated)",
            100.0 * pc.hit_rate(),
            pc.hits,
            pc.negative_hits,
            pc.misses,
            pc.evictions,
            pc.invalidations,
        );
    }
    let telemetry = offloadnn_telemetry::global().snapshot();
    println!("\n— client-side telemetry (net.encode / net.rtt) —\n{telemetry}");

    // End-to-end conservation: every offered request is accounted for
    // exactly once, and the wire-observed verdicts match the server's
    // own counters class by class.
    let mut violations = Vec::new();
    if tally.outcomes() + tally.server_error + tally.transport_error != args.requests {
        violations.push(format!(
            "offered {} != outcomes {} + server-err {} + transport-err {}",
            args.requests,
            tally.outcomes(),
            tally.server_error,
            tally.transport_error
        ));
    }
    if !m.is_conserved() {
        violations.push(format!(
            "server conservation violated: submitted {} != resolved {}",
            m.submitted,
            m.resolved()
        ));
    }
    if scale_errors > 0 || reshards.len() != args.scale_script.len() {
        violations.push(format!(
            "scale script: {} of {} steps completed, {} errored",
            reshards.len(),
            args.scale_script.len(),
            scale_errors
        ));
    }
    // Steps that targeted the current shard count are no-ops and don't
    // bump the server's reshard counter.
    let effective = reshards.iter().filter(|r| r.from_shards != r.to_shards).count() as u64;
    if m.reshards != effective {
        violations.push(format!(
            "server counted {} reshards, script performed {effective} topology changes",
            m.reshards
        ));
    }
    if tally.transport_error == 0 {
        for (name, wire, server) in [
            ("submitted", tally.outcomes(), m.submitted),
            ("admitted", tally.admitted, m.admitted),
            ("rejected", tally.rejected, m.rejected),
            ("shed", tally.shed, m.shed),
            ("expired", tally.expired, m.expired),
        ] {
            if wire != server {
                violations.push(format!("{name}: wire saw {wire}, server counted {server}"));
            }
        }
    }
    if violations.is_empty() {
        println!("\nconservation: OK");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("error: {v}");
        }
        ExitCode::FAILURE
    }
}

//! Loopback load generator for the `offloadnn-net` TCP frontend.
//!
//! Starts a [`NetServer`] on an ephemeral loopback port, drives it with
//! N concurrent [`Client`] connections pipelining admission submits,
//! then drains and cross-checks the end-to-end conservation invariant:
//!
//! ```text
//! offered = outcomes received + refused + transport-errored + lost
//! server.submitted = outcomes received  (per verdict class, exactly)
//! ```
//!
//! Exits non-zero on any violation, so CI can gate on it. The flag
//! surface, verdict tally and driver loop are the shared ones from
//! [`offloadnn_serve::loadgen::args`] — each connection's [`Client`] is
//! driven purely as a `&dyn Admitter`, the same loop body the other
//! tiers use.
//!
//! ```text
//! cargo run --release -p offloadnn-net --bin net_loadgen -- \
//!     --requests 20000 --clients 4 --shards 4
//! ```

use offloadnn_core::instance::PathOption;
use offloadnn_core::scenario::small_scenario;
use offloadnn_core::task::Task;
use offloadnn_net::{AnyServer, Client, ClientConfig, Frontend, NetConfig};
use offloadnn_plancache::PlanCacheConfig;
use offloadnn_serve::loadgen::args::{self, CommonArgs, DriveConfig, DriveReport, WireTally};
use offloadnn_serve::{ServiceConfig, ShapePool};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

const USAGE: &str = "\
net_loadgen — loopback load generator for the offloadnn-net TCP frontend

USAGE: net_loadgen [OPTIONS]

OPTIONS (all optional; defaults in brackets):
  --frontend F        TCP frontend serving the run:
                      'threads' (reader+writer pair per
                      connection) or 'reactor' (fixed epoll
                      event-loop pool)                    [threads]
  --requests N        total submits across all clients    [20000]
  --clients N         concurrent client connections; the
                      server's connection limit is raised
                      to fit, so 512+ works against the
                      reactor frontend                    [4]
  --window N          per-client pipeline depth           [128]
  --shards N          service worker shards               [4]
  --ues N             UEs in the reference scenario       [5]
  --deadline-ms N     client-shipped admission budget, ms
                      (0 = server policy deadline)        [0]
  --max-active N      admitted tasks kept per client
                      before the oldest departs           [64]
  --snapshot-every N  interleave a metrics snapshot every
                      N submits per client (0 = never)    [0]
  --queue-capacity N  per-shard ingress queue bound       [1024]
  --batch-max N       max requests per solver round       [64]
  --batch-window-us N batch assembly window, µs           [2000]
  --seed N            RNG seed (task mix)                 [7]
  --scale-script S    comma-separated at:shards steps, e.g.
                      \"5000:8,15000:2\" — a control client
                      reshards the live server to `shards`
                      once `at` submits have been offered
                      across all clients                  [none]
  --shape-skew S      Zipf exponent of the task-shape mix;
                      0 keeps the uniform prototype draw  [0]
  --shape-pool N      distinct shapes in the Zipf pool    [64]
  --plan-cache B      true|false — enable the server-side
                      admission plan cache                [false]
  -h, --help          print this help
";

/// The flags only this binary understands.
struct Extra {
    snapshot_every: u64,
    queue_capacity: usize,
    batch_max: usize,
    batch_window_us: u64,
    scale_script: Vec<(u64, u32)>,
    plan_cache: bool,
}

fn parse_args() -> Result<(CommonArgs, Extra), String> {
    let s = ServiceConfig::default();
    let mut common = CommonArgs { requests: 20_000, window: 128, shards: s.shards, ..CommonArgs::default() };
    let mut extra = Extra {
        snapshot_every: 0,
        queue_capacity: s.queue_capacity,
        batch_max: s.batch_max,
        batch_window_us: s.batch_window.as_micros() as u64,
        scale_script: Vec::new(),
        plan_cache: false,
    };
    args::parse(USAGE, &mut common, |flag, it| {
        match flag {
            "--snapshot-every" | "--queue-capacity" | "--batch-max" | "--batch-window-us"
            | "--scale-script" | "--plan-cache" => {}
            _ => return Ok(false),
        }
        let value = it.next().ok_or_else(|| format!("{flag}: missing value"))?;
        let bad = |e: &dyn std::fmt::Display| format!("{flag} {value}: {e}");
        match flag {
            "--snapshot-every" => extra.snapshot_every = value.parse().map_err(|e| bad(&e))?,
            "--queue-capacity" => extra.queue_capacity = value.parse().map_err(|e| bad(&e))?,
            "--batch-max" => extra.batch_max = value.parse().map_err(|e| bad(&e))?,
            "--batch-window-us" => extra.batch_window_us = value.parse().map_err(|e| bad(&e))?,
            "--scale-script" => extra.scale_script = args::parse_scale_script(&value)?,
            "--plan-cache" => extra.plan_cache = value.parse().map_err(|e| bad(&e))?,
            _ => unreachable!("guarded above"),
        }
        Ok(true)
    })?;
    Ok((common, extra))
}

/// One driver connection: dial, hand the client to the shared
/// tier-agnostic drive loop, hang up. A failed dial charges this
/// driver's whole share as transport errors (the submits were offered
/// to a dead endpoint).
fn run_client(
    addr: std::net::SocketAddr,
    cfg: DriveConfig,
    protos: &[(Task, Vec<PathOption>)],
    shapes: Option<&ShapePool>,
    offered: &AtomicU64,
) -> DriveReport {
    let client = match Client::connect(addr, ClientConfig::default()) {
        Ok(c) => c,
        Err(_) => {
            offered.fetch_add(cfg.requests, Ordering::Relaxed);
            return DriveReport {
                tally: WireTally { transport: cfg.requests, ..WireTally::default() },
                departed: 0,
            };
        }
    };
    let report = args::drive(&client, &cfg, protos, shapes, offered);
    client.close();
    report
}

fn main() -> ExitCode {
    let (common, extra) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let frontend: Frontend = match common.frontend.parse() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: --frontend {}: {e}", common.frontend);
            return ExitCode::from(2);
        }
    };
    let service_config = ServiceConfig {
        shards: common.shards,
        queue_capacity: extra.queue_capacity,
        batch_max: extra.batch_max,
        batch_window: Duration::from_micros(extra.batch_window_us),
        plan_cache: extra.plan_cache.then(PlanCacheConfig::default),
        ..ServiceConfig::default()
    };
    if let Err(e) = service_config.validate() {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }

    let scenario = small_scenario(common.ues);
    let protos: Vec<_> =
        scenario.instance.tasks.iter().cloned().zip(scenario.instance.options.iter().cloned()).collect();
    let shapes = (common.shape_skew > 0.0)
        .then(|| ShapePool::new(common.shape_pool, common.shape_skew, protos.len(), common.seed));

    // Raise the connection limit to fit the requested client fleet (+
    // the control connection and the shutdown wake), so --clients 512
    // exercises concurrency rather than the TooManyConnections path.
    let net_config = NetConfig {
        max_connections: NetConfig::default().max_connections.max(common.clients + 8),
        ..NetConfig::default()
    };
    let server =
        match AnyServer::start(frontend, ("127.0.0.1", 0), net_config, service_config, &scenario.instance) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: failed to start server: {e}");
                return ExitCode::FAILURE;
            }
        };
    let addr = server.local_addr();
    args::print_header(
        "net",
        &common.frontend,
        common.seed,
        format_args!(
            "{} requests, {} concurrent connection(s) x window {}, {} shard(s) — server {addr}",
            common.requests, common.clients, common.window, common.shards
        ),
    );
    if common.shape_skew > 0.0 {
        println!(
            "shapes: Zipf skew {:.2} over a pool of {} deterministic shapes (plan cache {})",
            common.shape_skew,
            common.shape_pool,
            if extra.plan_cache { "on" } else { "off" },
        );
    }

    let started = Instant::now();
    let per_client = common.requests / common.clients as u64;
    let remainder = common.requests % common.clients as u64;
    let mut total = DriveReport::default();
    let offered = AtomicU64::new(0);
    let clients_done = AtomicBool::new(false);
    let mut scale_errors = 0u64;
    let mut reshards: Vec<offloadnn_net::codec::ScaleResponse> = Vec::new();
    std::thread::scope(|scope| {
        // A dedicated control connection walks the scale script while the
        // load clients pipeline submits: each step fires once the global
        // offered count passes its threshold (or immediately once every
        // client has finished, so trailing steps still run). Resharding
        // is management plane, so it stays on the concrete Client.
        let controller = (!extra.scale_script.is_empty()).then(|| {
            let (script, offered, clients_done) = (&extra.scale_script, &offered, &clients_done);
            scope.spawn(move || {
                let mut responses = Vec::new();
                let mut errors = 0u64;
                let Ok(client) = Client::connect(addr, ClientConfig::default()) else {
                    return (responses, script.len() as u64);
                };
                let mut script = script.clone();
                script.sort_unstable();
                for (at, shards) in script {
                    while offered.load(Ordering::Relaxed) < at && !clients_done.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    match client.scale_to(shards) {
                        Ok(resp) => responses.push(resp),
                        Err(e) => {
                            eprintln!("error: scale_to({shards}) failed: {e}");
                            errors += 1;
                        }
                    }
                }
                client.close();
                (responses, errors)
            })
        });
        let handles: Vec<_> = (0..common.clients)
            .map(|idx| {
                let share = per_client + u64::from((idx as u64) < remainder);
                let mut cfg = DriveConfig::from_common(&common, idx, share);
                cfg.snapshot_every = extra.snapshot_every;
                let (protos, offered) = (&protos, &offered);
                let shapes = shapes.as_ref();
                scope.spawn(move || run_client(addr, cfg, protos, shapes, offered))
            })
            .collect();
        for h in handles {
            let r = h.join().expect("client thread");
            total.tally.merge(r.tally);
            total.departed += r.departed;
        }
        clients_done.store(true, Ordering::Relaxed);
        if let Some(c) = controller {
            let (responses, errors) = c.join().expect("scale controller thread");
            reshards = responses;
            scale_errors = errors;
        }
    });
    let wall = started.elapsed();
    let tally = total.tally;

    let report = server.shutdown();
    let m = &report.metrics;
    let submit_rate = common.requests as f64 / wall.as_secs_f64().max(1e-9);

    println!("\n— run —");
    println!(
        "wall {:.3?}   offered {}   {:.0} submits/s   departed {}",
        wall, common.requests, submit_rate, total.departed
    );
    println!("outcomes: {tally}");
    for r in &reshards {
        println!(
            "reshard:  {} -> {} shards, {} in-flight tasks migrated (generation {})",
            r.from_shards, r.to_shards, r.migrated, r.generation
        );
    }
    println!("\n— server (post-drain) —\n{m}");
    if let Some(pc) = &report.plan_cache {
        println!(
            "plan cache: hit rate {:.1}% ({} hits, {} negative, {} misses, {} evictions, {} invalidated)",
            100.0 * pc.hit_rate(),
            pc.hits,
            pc.negative_hits,
            pc.misses,
            pc.evictions,
            pc.invalidations,
        );
    }
    let telemetry = offloadnn_telemetry::global().snapshot();
    println!("\n— client-side telemetry (net.encode / net.rtt) —\n{telemetry}");

    // End-to-end conservation: every offered request is accounted for
    // exactly once, and the wire-observed verdicts match the server's
    // own counters class by class.
    let mut violations = Vec::new();
    if tally.outcomes() + tally.errors() != common.requests {
        violations.push(format!(
            "offered {} != outcomes {} + errors {}",
            common.requests,
            tally.outcomes(),
            tally.errors(),
        ));
    }
    if !m.is_conserved() {
        violations.push(format!(
            "server conservation violated: submitted {} != resolved {}",
            m.submitted,
            m.resolved()
        ));
    }
    if scale_errors > 0 || reshards.len() != extra.scale_script.len() {
        violations.push(format!(
            "scale script: {} of {} steps completed, {} errored",
            reshards.len(),
            extra.scale_script.len(),
            scale_errors
        ));
    }
    // Steps that targeted the current shard count are no-ops and don't
    // bump the server's reshard counter.
    let effective = reshards.iter().filter(|r| r.from_shards != r.to_shards).count() as u64;
    if m.reshards != effective {
        violations.push(format!(
            "server counted {} reshards, script performed {effective} topology changes",
            m.reshards
        ));
    }
    if tally.errors() == 0 {
        for (name, wire, server) in [
            ("submitted", tally.outcomes(), m.submitted),
            ("admitted", tally.admitted, m.admitted),
            ("rejected", tally.rejected, m.rejected),
            ("shed", tally.shed, m.shed),
            ("expired", tally.expired, m.expired),
        ] {
            if wire != server {
                violations.push(format!("{name}: wire saw {wire}, server counted {server}"));
            }
        }
    }
    if violations.is_empty() {
        println!("\nconservation: OK");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("error: {v}");
        }
        ExitCode::FAILURE
    }
}

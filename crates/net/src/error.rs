//! Error types of the wire codec and the TCP client/server.

use crate::codec::ErrorResponse;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a byte sequence failed to decode into a [`crate::Frame`].
///
/// Every variant is a *typed* rejection: malformed input — truncation,
/// bad magic, version skew, oversized length prefixes, corrupted
/// checksums, out-of-range enum tags — surfaces here and never as a
/// panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecodeError {
    /// The first four bytes are not the protocol magic.
    BadMagic {
        /// The bytes found where the magic should be.
        got: [u8; 4],
    },
    /// The version byte names a protocol revision this build does not
    /// speak.
    UnsupportedVersion {
        /// The version found on the wire.
        got: u8,
    },
    /// The frame-type byte is not a known request or response type.
    UnknownFrameType {
        /// The type tag found on the wire.
        got: u8,
    },
    /// The reserved header bytes were not zero (a future revision may
    /// assign them meaning; this one requires them clear).
    NonZeroReserved,
    /// The payload length prefix exceeds [`crate::codec::MAX_PAYLOAD`].
    OversizedPayload {
        /// The claimed payload length.
        len: u32,
    },
    /// The frame checksum does not match the header + payload bytes.
    BadChecksum {
        /// Checksum recomputed from the received bytes.
        expected: u32,
        /// Checksum carried by the frame.
        got: u32,
    },
    /// The buffer ended before the named field (only from
    /// [`crate::codec::decode_exact`]; the streaming decoder reports
    /// incomplete input as `Ok(None)` instead).
    Truncated {
        /// The field being read when the bytes ran out.
        field: &'static str,
    },
    /// A string length prefix exceeds [`crate::wire::MAX_STRING`] or the
    /// bytes remaining in the payload.
    OversizedString {
        /// The claimed string length.
        len: u32,
    },
    /// A sequence length prefix claims more elements than the remaining
    /// payload bytes could possibly hold.
    OversizedSeq {
        /// The claimed element count.
        len: u32,
    },
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// An enum tag byte is out of range for the named field.
    BadEnumTag {
        /// Which field carried the tag.
        what: &'static str,
        /// The tag found on the wire.
        got: u8,
    },
    /// A fixed-size field carried the wrong element count (e.g. a
    /// histogram snapshot with a foreign bucket count).
    WrongLength {
        /// Which field had the wrong count.
        what: &'static str,
        /// The count found on the wire.
        got: u32,
        /// The count this build requires.
        want: u32,
    },
    /// The payload parsed but left unread bytes behind — the frame is
    /// internally inconsistent.
    TrailingBytes {
        /// Unread bytes left in the payload.
        extra: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic { got } => write!(f, "bad magic {got:02x?}"),
            DecodeError::UnsupportedVersion { got } => write!(f, "unsupported protocol version {got}"),
            DecodeError::UnknownFrameType { got } => write!(f, "unknown frame type 0x{got:02x}"),
            DecodeError::NonZeroReserved => f.write_str("reserved header bytes are not zero"),
            DecodeError::OversizedPayload { len } => {
                write!(f, "payload length {len} exceeds the frame limit")
            }
            DecodeError::BadChecksum { expected, got } => {
                write!(f, "checksum mismatch (computed {expected:#010x}, frame carries {got:#010x})")
            }
            DecodeError::Truncated { field } => write!(f, "input ended while reading {field}"),
            DecodeError::OversizedString { len } => write!(f, "string length {len} exceeds its bounds"),
            DecodeError::OversizedSeq { len } => write!(f, "sequence length {len} exceeds the payload"),
            DecodeError::BadUtf8 => f.write_str("string field is not valid UTF-8"),
            DecodeError::BadEnumTag { what, got } => write!(f, "invalid tag {got} for {what}"),
            DecodeError::WrongLength { what, got, want } => {
                write!(f, "{what}: expected {want} element(s), found {got}")
            }
            DecodeError::TrailingBytes { extra } => write!(f, "{extra} trailing byte(s) after the payload"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Errors raised by the TCP client and server.
#[derive(Debug)]
pub enum NetError {
    /// A socket operation failed.
    Io(std::io::Error),
    /// The peer sent bytes the codec rejected.
    Decode(DecodeError),
    /// The connection died (or was never established) after the
    /// configured reconnect attempts.
    Disconnected(String),
    /// The server answered the request with an [`ErrorResponse`] (e.g.
    /// the service is draining, or the submit carried no options).
    Server(ErrorResponse),
    /// A configuration field is out of its valid range.
    InvalidConfig(&'static str),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Decode(e) => write!(f, "protocol error: {e}"),
            NetError::Disconnected(why) => write!(f, "disconnected: {why}"),
            NetError::Server(e) => write!(f, "server error ({:?}): {}", e.code, e.message),
            NetError::InvalidConfig(what) => write!(f, "invalid net config: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<DecodeError> for NetError {
    fn from(e: DecodeError) -> Self {
        NetError::Decode(e)
    }
}

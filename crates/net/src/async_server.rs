//! The readiness-driven (epoll) TCP frontend over
//! [`offloadnn_serve::Service`].
//!
//! ## Why a second frontend
//!
//! [`crate::server::NetServer`] spends two OS threads per connection,
//! which serves hundreds of clients well but not the paper's "fleets of
//! intermittent mobile UEs" shape: at thousands of mostly-idle
//! connections, stacks and context switches dominate. `AsyncServer`
//! multiplexes every connection over a **fixed** pool — one acceptor plus
//! K event-loop threads (each with a paired completion thread), K chosen
//! independently of the connection count — on the epoll primitives of
//! `offloadnn-reactor`.
//!
//! ## Threading model
//!
//! ```text
//! acceptor ──round-robin──┬─ event loop 0 ⇄ completion 0
//!   (blocking accept,     ├─ event loop 1 ⇄ completion 1
//!    capped backoff)      └─ ...
//!
//! event loop: epoll_wait → read nonblocking sockets → decode frames →
//!             submit to Service → queue CompletionMsg → write replies
//!             (partial-write resumption via EPOLLOUT)
//! completion: blocks redeeming Tickets in FIFO order, encodes response
//!             frames, hands them back to its loop via the done queue +
//!             waker
//! ```
//!
//! The completion thread exists because [`PendingOutcome`] redemption
//! blocks and an event loop must never block. Routing **every** reply of a
//! connection through its loop's FIFO completion channel reproduces the
//! threaded frontend's per-connection writer-queue ordering exactly:
//! verdicts flush in submit order, a drain's final metrics snapshot is
//! taken after the connection's earlier verdicts resolved, and the error
//! frame that closes a misbehaving connection trails everything the
//! client is still owed.
//!
//! ## Parity with the threaded frontend
//!
//! Backpressure: a connection with `inflight_window` replies outstanding
//! (or an unflushed write backlog past the soft cap) loses read interest
//! — level-triggered epoll re-reports the readiness when the window
//! frees, so backpressure propagates through the TCP receive buffer just
//! like the threaded server's bounded writer channel. Deadline
//! propagation, drain-flush, live `Scale` frames and the
//! incomplete-vs-malformed codec distinction are all inherited from the
//! same [`Backend`] + [`codec`] layers; the loopback suite runs the same
//! assertions against either frontend.

use crate::backend::{Backend, PendingOutcome};
use crate::backoff::AcceptBackoff;
use crate::codec::{self, ErrorCode, ErrorResponse, Frame, MetricsResponse, OutcomeResponse, ScaleResponse};
use crate::error::NetError;
use crate::instruments::NetInstruments;
use crate::server::{reject_over_limit, NetConfig};
use crossbeam::channel::{self, Receiver, Sender};
use offloadnn_core::instance::DotInstance;
use offloadnn_reactor::{Epoll, Event, Events, Interest, Waker};
use offloadnn_serve::{DrainReport, Service, ServiceConfig};
use offloadnn_telemetry::{event, Severity};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The epoll token reserved for each loop's waker pipe.
const WAKE_TOKEN: u64 = u64::MAX;
/// Socket read granularity.
const READ_CHUNK: usize = 16 * 1024;
/// Reads drained per readiness event before yielding to other
/// connections (level-triggered epoll re-reports leftover readiness).
const MAX_READS_PER_EVENT: usize = 8;
/// Unflushed write backlog past which a connection stops being read —
/// the bound on per-connection write-queue memory.
const WBUF_PAUSE: usize = 256 * 1024;

/// Tuning knobs of the reactor frontend (on top of [`NetConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReactorConfig {
    /// Number of event-loop threads (each with one completion thread).
    /// The whole point of the reactor: this stays small and fixed while
    /// connection counts grow into the thousands.
    pub event_loops: usize,
    /// Readiness events drained per `epoll_wait` call.
    pub max_events: usize,
    /// `epoll_wait` timeout — the cadence at which an otherwise idle
    /// loop rechecks the shutdown flag and write deadlines.
    pub wait_timeout: Duration,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        Self { event_loops: 2, max_events: 256, wait_timeout: Duration::from_millis(50) }
    }
}

impl ReactorConfig {
    /// Validates every field.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), NetError> {
        if self.event_loops == 0 {
            return Err(NetError::InvalidConfig("event_loops must be >= 1"));
        }
        if self.max_events == 0 {
            return Err(NetError::InvalidConfig("max_events must be >= 1"));
        }
        if self.wait_timeout.is_zero() {
            return Err(NetError::InvalidConfig("wait_timeout must be > 0"));
        }
        Ok(())
    }
}

/// What an event loop hands its completion thread. FIFO per loop, which
/// gives each connection the threaded frontend's writer-queue ordering.
#[allow(clippy::large_enum_variant)] // transient, window-bounded queue
enum CompletionMsg<P: PendingOutcome> {
    /// Redeem the ticket (blocking) and reply with the outcome.
    Verdict { token: u64, request_id: u64, ticket: P },
    /// Encode an already-built frame.
    Reply { token: u64, frame: Frame },
    /// Snapshot the service *at completion time* — i.e. after every
    /// earlier verdict of this connection resolved — and reply with the
    /// final metrics frame (the drain acknowledgement).
    FinalMetrics { token: u64, request_id: u64 },
    /// Run the (milliseconds-long) reshard off the event loop and reply
    /// with its result.
    Scale { token: u64, request_id: u64, shards: u32 },
}

/// One encoded reply coming back from a completion thread.
struct Done {
    token: u64,
    bytes: Vec<u8>,
}

/// State shared by the acceptor, the event loops, the completion threads
/// and the [`AsyncServer`] handle.
struct AsyncShared<B: Backend> {
    service: B,
    net: NetConfig,
    reactor: ReactorConfig,
    shutdown: AtomicBool,
    active: AtomicUsize,
    instruments: Option<NetInstruments>,
    /// Armed by [`AsyncServer::announce_to`]; fired (once) when the
    /// node drains or shuts down, so the gateway deregisters it.
    leave_notice: Mutex<Option<Arc<crate::backend::LeaveNotice>>>,
}

/// The acceptor's handle to one event loop.
struct LoopHandle {
    incoming: Sender<TcpStream>,
    waker: Arc<Waker>,
}

/// A running reactor frontend over any [`Backend`] (an in-process
/// [`Service`] fleet by default). Start with [`AsyncServer::start`] (or
/// [`AsyncServer::start_with_backend`]); stop with
/// [`AsyncServer::shutdown`], which drains the backend and returns its
/// final [`DrainReport`].
pub struct AsyncServer<B: Backend = Service> {
    local_addr: SocketAddr,
    shared: Arc<AsyncShared<B>>,
    wakers: Vec<Arc<Waker>>,
    acceptor: Option<JoinHandle<()>>,
    loops: Vec<JoinHandle<()>>,
    completions: Vec<JoinHandle<()>>,
}

impl<B: Backend> std::fmt::Debug for AsyncServer<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncServer")
            .field("local_addr", &self.local_addr)
            .field("event_loops", &self.loops.len())
            .finish_non_exhaustive()
    }
}

impl AsyncServer<Service> {
    /// Binds `addr` (use port 0 for an ephemeral port), starts the shard
    /// fleet, the event-loop pool and the acceptor thread.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidConfig`] for bad configuration,
    /// [`NetError::Io`] if the bind or reactor setup fails.
    pub fn start(
        addr: impl ToSocketAddrs,
        net: NetConfig,
        reactor: ReactorConfig,
        service_config: ServiceConfig,
        template: &DotInstance,
    ) -> Result<Self, NetError> {
        let service = Service::start(service_config, template).map_err(|e| {
            NetError::InvalidConfig(match e {
                offloadnn_serve::ServeError::InvalidConfig(what) => what,
                offloadnn_serve::ServeError::Draining => "service is draining",
            })
        })?;
        Self::start_with_backend(addr, net, reactor, service)
    }
}

impl<B: Backend> AsyncServer<B> {
    /// Binds `addr` and serves an already-running backend (e.g. a
    /// cluster gateway) over the same wire protocol and event-loop pool
    /// as [`AsyncServer::start`].
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidConfig`] for bad configuration,
    /// [`NetError::Io`] if the bind or reactor setup fails.
    pub fn start_with_backend(
        addr: impl ToSocketAddrs,
        net: NetConfig,
        reactor: ReactorConfig,
        backend: B,
    ) -> Result<Self, NetError> {
        net.validate()?;
        reactor.validate()?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(AsyncShared {
            service: backend,
            net,
            reactor,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            instruments: NetInstruments::new(),
            leave_notice: Mutex::new(None),
        });

        let mut handles = Vec::with_capacity(reactor.event_loops);
        let mut wakers = Vec::with_capacity(reactor.event_loops);
        let mut loops = Vec::with_capacity(reactor.event_loops);
        let mut completions = Vec::with_capacity(reactor.event_loops);
        for loop_id in 0..reactor.event_loops {
            let epoll = Epoll::new()?;
            let waker = Arc::new(Waker::new()?);
            epoll.add(waker.fd(), WAKE_TOKEN, Interest::READABLE)?;
            let (incoming_tx, incoming_rx) = channel::unbounded::<TcpStream>();
            let (comp_tx, comp_rx) = channel::unbounded::<CompletionMsg<B::Pending>>();
            let done = Arc::new(Mutex::new(Vec::<Done>::new()));

            completions.push({
                let shared = Arc::clone(&shared);
                let done = Arc::clone(&done);
                let waker = Arc::clone(&waker);
                std::thread::Builder::new()
                    .name(format!("net-rcomp-{loop_id}"))
                    .spawn(move || completion_loop(&comp_rx, &shared, &done, &waker))
                    .expect("spawn completion thread")
            });
            loops.push({
                let mut event_loop = EventLoop {
                    loop_id,
                    shared: Arc::clone(&shared),
                    epoll,
                    waker: Arc::clone(&waker),
                    incoming: incoming_rx,
                    comp_tx,
                    done,
                    slots: Vec::new(),
                    free: Vec::new(),
                    live: 0,
                };
                std::thread::Builder::new()
                    .name(format!("net-rloop-{loop_id}"))
                    .spawn(move || event_loop.run())
                    .expect("spawn event loop")
            });
            handles.push(LoopHandle { incoming: incoming_tx, waker: Arc::clone(&waker) });
            wakers.push(waker);
        }

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("net-racceptor".into())
                .spawn(move || accept_loop(&listener, &shared, &handles))
                .expect("spawn acceptor")
        };
        event!(
            Severity::Info,
            "net.async",
            "listening on {local_addr}: {} conn(s) max over {} event loop(s), window {}",
            net.max_connections,
            reactor.event_loops,
            net.inflight_window
        );
        Ok(Self { local_addr, shared, wakers, acceptor: Some(acceptor), loops, completions })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Point-in-time metrics of the underlying backend.
    pub fn metrics(&self) -> offloadnn_serve::MetricsSnapshot {
        self.shared.service.metrics()
    }

    /// Whether a drain has begun (via [`Frame::Drain`] or
    /// [`AsyncServer::shutdown`]).
    pub fn is_draining(&self) -> bool {
        self.shared.service.is_draining()
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Reshapes the underlying backend at runtime; traffic keeps flowing
    /// throughout. See [`Backend::scale_to`].
    ///
    /// # Errors
    ///
    /// Propagates [`Backend::scale_to`] errors.
    pub fn scale_to(
        &self,
        shards: usize,
    ) -> Result<offloadnn_serve::ReshardReport, offloadnn_serve::ServeError> {
        self.shared.service.scale_to(shards)
    }

    /// Registers this node with a gateway's membership engine, exactly
    /// as [`crate::server::NetServer::announce_to`] does for the
    /// threaded frontend: announce under a fresh wall-clock incarnation,
    /// arm a graceful leave for drain/shutdown.
    ///
    /// # Errors
    ///
    /// Transport errors when the gateway cannot be reached or does not
    /// answer; the announce can simply be retried.
    pub fn announce_to(&self, gateway: SocketAddr) -> Result<codec::MembershipResponse, NetError> {
        let incarnation = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(1, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            .max(1);
        self.announce_to_as(gateway, incarnation)
    }

    /// [`AsyncServer::announce_to`] with an explicit incarnation stamp.
    ///
    /// # Errors
    ///
    /// As [`AsyncServer::announce_to`].
    pub fn announce_to_as(
        &self,
        gateway: SocketAddr,
        incarnation: u64,
    ) -> Result<codec::MembershipResponse, NetError> {
        let config = crate::backend::membership_client_config();
        let timeout = crate::backend::MEMBERSHIP_RPC_TIMEOUT;
        let client = crate::client::Client::connect(gateway, config)?;
        let addr = self.local_addr.to_string();
        let reply = client.announce(&addr, incarnation, timeout)?;
        let notice = Arc::new(crate::backend::LeaveNotice::new(gateway, addr, incarnation, config, timeout));
        let hook_notice = Arc::clone(&notice);
        let _ = self.shared.service.on_drain(Box::new(move || hook_notice.fire()));
        *self.shared.leave_notice.lock().expect("leave notice lock") = Some(notice);
        Ok(reply)
    }

    /// Gracefully stops the frontend: fences the ingress, stops the
    /// acceptor, lets every connection flush its in-flight outcomes to
    /// its client, joins the fixed thread pool, then drains the
    /// underlying service and returns its final report.
    pub fn shutdown(mut self) -> DrainReport {
        // Deregister from the gateway (if announced) before fencing, so
        // the cluster stops routing to this node while its in-flight
        // work can still resolve.
        if let Some(notice) = self.shared.leave_notice.lock().expect("leave notice lock").take() {
            notice.fire();
        }
        self.shared.service.begin_drain();
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake the acceptor out of its blocking accept().
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // The acceptor owned the incoming senders; with it joined, wake
        // the loops so they notice the shutdown flag, flush and exit.
        for waker in &self.wakers {
            waker.wake();
        }
        for h in self.loops.drain(..) {
            let _ = h.join();
        }
        // Each loop dropped its completion sender on exit.
        for h in self.completions.drain(..) {
            let _ = h.join();
        }
        event!(Severity::Info, "net.async", "frontend stopped on {}", self.local_addr);
        self.wakers.clear();
        let shared = Arc::try_unwrap(self.shared)
            .unwrap_or_else(|_| panic!("all reactor threads joined, no AsyncShared clones remain"));
        shared.service.drain()
    }
}

/// Blocking accept with capped backoff; dispatches connections to the
/// event loops round-robin.
fn accept_loop<B: Backend>(listener: &TcpListener, shared: &Arc<AsyncShared<B>>, handles: &[LoopHandle]) {
    let mut backoff = AcceptBackoff::new();
    let mut next_loop = 0usize;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let stream = match listener.accept() {
            Ok((s, _)) => {
                backoff.on_success();
                s
            }
            Err(e) => {
                event!(Severity::Warn, "net.async", "accept failed: {e}");
                if let Some(pause) = backoff.on_error(&e) {
                    std::thread::sleep(pause);
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::Acquire) {
            break; // the shutdown self-connect
        }
        if shared.active.load(Ordering::Acquire) >= shared.net.max_connections {
            event!(Severity::Warn, "net.async", "rejecting connection: limit reached");
            reject_over_limit(stream, shared.net.write_timeout);
            continue;
        }
        shared.active.fetch_add(1, Ordering::AcqRel);
        if let Some(instruments) = &shared.instruments {
            instruments.conns.add(1);
        }
        let handle = &handles[next_loop % handles.len()];
        next_loop = next_loop.wrapping_add(1);
        if handle.incoming.send(stream).is_err() {
            // The loop is gone (fatal epoll error); undo the accounting.
            shared.active.fetch_sub(1, Ordering::AcqRel);
            if let Some(instruments) = &shared.instruments {
                instruments.conns.sub(1);
            }
            continue;
        }
        handle.waker.wake();
    }
}

/// Redeems tickets and encodes replies off the event loop, FIFO.
fn completion_loop<B: Backend>(
    rx: &Receiver<CompletionMsg<B::Pending>>,
    shared: &Arc<AsyncShared<B>>,
    done: &Mutex<Vec<Done>>,
    waker: &Waker,
) {
    while let Ok(msg) = rx.recv() {
        let (token, frame) = match msg {
            CompletionMsg::Verdict { token, request_id, ticket } => {
                let frame = match ticket.try_wait().or_else(|| ticket.wait()) {
                    Some(outcome) => Frame::Outcome(OutcomeResponse { request_id, outcome }),
                    None => Frame::Error(ErrorResponse {
                        request_id,
                        code: ErrorCode::Internal,
                        message: "worker exited before resolving the request".to_owned(),
                    }),
                };
                (token, frame)
            }
            CompletionMsg::Reply { token, frame } => (token, frame),
            CompletionMsg::FinalMetrics { token, request_id } => (
                token,
                Frame::Metrics(MetricsResponse {
                    request_id,
                    is_final: true,
                    metrics: shared.service.metrics(),
                }),
            ),
            CompletionMsg::Scale { token, request_id, shards } => {
                let frame = match shared.service.scale_to(shards as usize) {
                    Ok(r) => Frame::Scaled(ScaleResponse {
                        request_id,
                        from_shards: r.from_shards as u32,
                        to_shards: r.to_shards as u32,
                        migrated: r.migrated,
                        generation: r.generation,
                    }),
                    Err(e) => Frame::Error(ErrorResponse {
                        request_id,
                        code: ErrorCode::InvalidScale,
                        message: e.to_string(),
                    }),
                };
                (token, frame)
            }
        };
        let bytes = codec::encode(&frame);
        done.lock().expect("done lock").push(Done { token, bytes });
        waker.wake();
    }
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// Bytes of `wbuf` already written to the socket.
    wpos: usize,
    /// Replies routed through the completion channel not yet applied —
    /// the reactor twin of the threaded writer-queue occupancy.
    pending: usize,
    /// The socket's read side is finished (EOF or server shutdown);
    /// frames already buffered still get parsed.
    eof: bool,
    /// Protocol violation: parsing stopped, the connection closes once
    /// its owed replies flush.
    aborted: bool,
    /// The socket is unusable; discard writes, redeem what's pending.
    dead: bool,
    /// Interest currently registered with epoll.
    interest: Interest,
    /// When the unflushed backlog last made progress (write-timeout
    /// enforcement, the threaded frontend's `set_write_timeout` twin).
    stalled_since: Option<Instant>,
}

impl Conn {
    fn backlog(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    fn done_for_good(&self) -> bool {
        self.pending == 0 && (self.eof || self.aborted) && (self.dead || self.backlog() == 0)
    }
}

/// A connection slot; `gen` survives reuse so stale tokens (epoll events
/// or completion replies for a closed connection) are recognised.
struct Slot {
    gen: u32,
    conn: Option<Conn>,
}

fn token_of(gen: u32, idx: usize) -> u64 {
    (u64::from(gen) << 32) | idx as u64
}

struct EventLoop<B: Backend> {
    loop_id: usize,
    shared: Arc<AsyncShared<B>>,
    epoll: Epoll,
    waker: Arc<Waker>,
    incoming: Receiver<TcpStream>,
    comp_tx: Sender<CompletionMsg<B::Pending>>,
    done: Arc<Mutex<Vec<Done>>>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    live: usize,
}

impl<B: Backend> EventLoop<B> {
    fn run(&mut self) {
        let mut events = Events::with_capacity(self.shared.reactor.max_events);
        let mut ready: Vec<Event> = Vec::with_capacity(self.shared.reactor.max_events);
        let wait = Some(self.shared.reactor.wait_timeout);
        loop {
            match self.epoll.wait(&mut events, wait) {
                Ok(_) => {}
                Err(e) => {
                    event!(Severity::Warn, "net.async", "loop {}: epoll_wait failed: {e}", self.loop_id);
                    break;
                }
            }
            if let Some(instruments) = &self.shared.instruments {
                instruments.epoll_wakeups.inc();
            }
            let mut woken = events.is_empty();
            ready.clear();
            ready.extend(events.iter());
            for ev in ready.drain(..) {
                if ev.token == WAKE_TOKEN {
                    woken = true;
                } else {
                    self.conn_event(ev);
                }
            }
            if woken {
                // Drain (re-arming the waker) *before* reading the
                // queues: a wake racing with the drain re-fires instead
                // of being lost.
                self.waker.drain();
            }
            while let Ok(stream) = self.incoming.try_recv() {
                self.register(stream);
            }
            let batch = std::mem::take(&mut *self.done.lock().expect("done lock"));
            for done in batch {
                self.apply_done(done);
            }
            let shutting_down = self.shared.shutdown.load(Ordering::Acquire);
            self.sweep(shutting_down);
            if shutting_down && self.live == 0 {
                break;
            }
        }
    }

    /// Adopts a freshly accepted connection into a slot + epoll.
    fn register(&mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            self.discard_unregistered(stream);
            return;
        }
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(Slot { gen: 0, conn: None });
                self.slots.len() - 1
            }
        };
        let token = token_of(self.slots[idx].gen, idx);
        let interest = Interest::READABLE;
        if self.epoll.add(stream.as_raw_fd(), token, interest).is_err() {
            self.free.push(idx);
            self.discard_unregistered(stream);
            return;
        }
        self.slots[idx].conn = Some(Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            pending: 0,
            eof: false,
            aborted: false,
            dead: false,
            interest,
            stalled_since: None,
        });
        self.live += 1;
    }

    /// Drops a connection that never made it into epoll.
    fn discard_unregistered(&self, stream: TcpStream) {
        let _ = stream.shutdown(Shutdown::Both);
        drop(stream);
        self.shared.active.fetch_sub(1, Ordering::AcqRel);
        if let Some(instruments) = &self.shared.instruments {
            instruments.conns.sub(1);
        }
    }

    /// Resolves a token to its slot index, ignoring stale generations.
    fn resolve(&self, token: u64) -> Option<usize> {
        let idx = (token & u32::MAX as u64) as usize;
        let gen = (token >> 32) as u32;
        let slot = self.slots.get(idx)?;
        (slot.gen == gen && slot.conn.is_some()).then_some(idx)
    }

    /// Handles one readiness event for one connection.
    fn conn_event(&mut self, ev: Event) {
        let Some(idx) = self.resolve(ev.token) else { return };
        if let Some(instruments) = &self.shared.instruments {
            if ev.readable || ev.read_closed || ev.hangup || ev.error {
                instruments.readiness_read.inc();
            }
            if ev.writable {
                instruments.readiness_write.inc();
            }
        }
        if ev.readable || ev.read_closed || ev.hangup || ev.error {
            self.handle_readable(idx);
        }
        if ev.writable {
            self.try_flush(idx);
        }
        self.finish_conn_turn(idx);
    }

    /// Reads until `WouldBlock`/EOF (bounded per event), then parses.
    fn handle_readable(&mut self, idx: usize) {
        let conn = self.slots[idx].conn.as_mut().expect("resolved conn");
        if conn.eof || conn.aborted || conn.dead {
            // Still consume the readiness so a half-closed peer doesn't
            // spin the loop: read and discard until EOF/WouldBlock.
            let mut sink = [0u8; READ_CHUNK];
            loop {
                match conn.stream.read(&mut sink) {
                    Ok(0) | Err(_) => {
                        conn.eof = true;
                        break;
                    }
                    Ok(_) => {}
                }
            }
            return;
        }
        let mut chunk = [0u8; READ_CHUNK];
        for _ in 0..MAX_READS_PER_EVENT {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => conn.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        self.parse_frames(idx);
    }

    /// Parses every complete buffered frame, stopping at the in-flight
    /// window (the bytes keep in `rbuf`; parsing resumes as replies
    /// apply) or on a protocol violation.
    fn parse_frames(&mut self, idx: usize) {
        loop {
            let conn = self.slots[idx].conn.as_mut().expect("resolved conn");
            if conn.aborted || conn.dead || conn.rbuf.is_empty() {
                return;
            }
            if conn.pending >= self.shared.net.inflight_window || conn.backlog() >= WBUF_PAUSE {
                return; // window backpressure: stop consuming
            }
            match codec::decode(&conn.rbuf) {
                Ok(Some((frame, consumed))) => {
                    conn.rbuf.drain(..consumed);
                    self.dispatch(idx, frame);
                }
                Ok(None) => return, // incomplete: wait for more bytes
                Err(e) => {
                    event!(Severity::Warn, "net.async", "protocol error, closing: {e}");
                    let token = token_of(self.slots[idx].gen, idx);
                    let frame = Frame::Error(ErrorResponse {
                        request_id: 0,
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    });
                    self.send_completion(idx, CompletionMsg::Reply { token, frame });
                    let conn = self.slots[idx].conn.as_mut().expect("resolved conn");
                    conn.aborted = true;
                    conn.rbuf.clear();
                    return;
                }
            }
        }
    }

    /// Queues a reply on the completion channel, bumping the
    /// connection's pending count.
    fn send_completion(&mut self, idx: usize, msg: CompletionMsg<B::Pending>) {
        let conn = self.slots[idx].conn.as_mut().expect("resolved conn");
        conn.pending += 1;
        if self.comp_tx.send(msg).is_err() {
            // Unreachable while the completion thread lives (it outlives
            // the loop); keep accounting sane anyway.
            let conn = self.slots[idx].conn.as_mut().expect("resolved conn");
            conn.pending -= 1;
            conn.dead = true;
        }
    }

    /// Dispatches one decoded request, mirroring the threaded
    /// `handle_frame` exactly.
    fn dispatch(&mut self, idx: usize, frame: Frame) {
        let token = token_of(self.slots[idx].gen, idx);
        match frame {
            Frame::Submit(req) => {
                // deadline_us == 0 is the wire encoding of "no client
                // deadline": the backend applies its own policy default.
                let budget = (req.deadline_us != 0).then(|| Duration::from_micros(req.deadline_us));
                let msg = match self.shared.service.submit(req.task, req.options, budget) {
                    Ok(ticket) => CompletionMsg::Verdict { token, request_id: req.request_id, ticket },
                    Err(e) => CompletionMsg::Reply {
                        token,
                        frame: Frame::Error(ErrorResponse {
                            request_id: req.request_id,
                            code: e.into(),
                            message: e.to_string(),
                        }),
                    },
                };
                self.send_completion(idx, msg);
            }
            Frame::Depart(req) => {
                // Fire-and-forget, same as the threaded reader thread.
                self.shared.service.depart(req.task);
            }
            Frame::Snapshot(req) => {
                // The snapshot is taken at dispatch time (threaded
                // parity); the completion channel only sequences it
                // behind this connection's earlier replies.
                let frame = Frame::Metrics(MetricsResponse {
                    request_id: req.request_id,
                    is_final: false,
                    metrics: self.shared.service.metrics(),
                });
                self.send_completion(idx, CompletionMsg::Reply { token, frame });
            }
            Frame::Drain(req) => {
                event!(Severity::Info, "net.async", "drain requested (request {})", req.request_id);
                self.shared.service.begin_drain();
                self.send_completion(idx, CompletionMsg::FinalMetrics { token, request_id: req.request_id });
            }
            Frame::Scale(req) => {
                event!(
                    Severity::Info,
                    "net.async",
                    "scale to {} shard(s) requested (request {})",
                    req.shards,
                    req.request_id
                );
                // Runs on the completion thread: a reshard takes
                // milliseconds and must not stall every connection this
                // loop is multiplexing.
                self.send_completion(
                    idx,
                    CompletionMsg::Scale { token, request_id: req.request_id, shards: req.shards },
                );
            }
            Frame::Announce(req) => {
                // Membership bookkeeping is a map update, not a reshard:
                // cheap enough to run inline like a snapshot.
                let frame = crate::backend::membership_frame(
                    &self.shared.service,
                    req.request_id,
                    &req.addr,
                    req.incarnation,
                    false,
                );
                self.send_completion(idx, CompletionMsg::Reply { token, frame });
            }
            Frame::Leave(req) => {
                let frame = crate::backend::membership_frame(
                    &self.shared.service,
                    req.request_id,
                    &req.addr,
                    req.incarnation,
                    true,
                );
                self.send_completion(idx, CompletionMsg::Reply { token, frame });
            }
            Frame::PeerHello(req) => {
                // A load digest is a couple of atomic reads: cheap enough
                // to answer inline like a snapshot.
                let frame = match self.shared.service.peer_load(&req.addr, req.incarnation) {
                    Some(d) => Frame::PeerLoad(crate::codec::PeerLoadResponse {
                        request_id: req.request_id,
                        healthy_nodes: d.healthy_nodes,
                        remaining_budget: d.remaining_budget,
                        round_ms_p50: d.round_ms_p50,
                        epoch: d.epoch,
                    }),
                    None => Frame::Error(ErrorResponse {
                        request_id: req.request_id,
                        code: ErrorCode::Internal,
                        message: "backend is not a federation gateway".to_owned(),
                    }),
                };
                self.send_completion(idx, CompletionMsg::Reply { token, frame });
            }
            Frame::Forward(req) => {
                // Submit parity, carrying the origin's *remaining*
                // deadline and the loop-freedom metadata.
                let budget = (req.deadline_us != 0).then(|| Duration::from_micros(req.deadline_us));
                let info =
                    crate::backend::ForwardInfo { origin: req.origin, tried: req.tried, hops: req.hops };
                let msg = match self.shared.service.forward(req.task, req.options, budget, info) {
                    Ok(ticket) => CompletionMsg::Verdict { token, request_id: req.request_id, ticket },
                    Err(e) => CompletionMsg::Reply {
                        token,
                        frame: Frame::Error(ErrorResponse {
                            request_id: req.request_id,
                            code: e.into(),
                            message: e.to_string(),
                        }),
                    },
                };
                self.send_completion(idx, msg);
            }
            // A client must not send response frames.
            Frame::Outcome(_)
            | Frame::Metrics(_)
            | Frame::Scaled(_)
            | Frame::Membership(_)
            | Frame::PeerLoad(_)
            | Frame::Error(_) => {
                let frame = Frame::Error(ErrorResponse {
                    request_id: frame.request_id(),
                    code: ErrorCode::Malformed,
                    message: format!("unexpected {} frame from client", frame.type_name()),
                });
                self.send_completion(idx, CompletionMsg::Reply { token, frame });
                let conn = self.slots[idx].conn.as_mut().expect("resolved conn");
                conn.aborted = true;
                conn.rbuf.clear();
            }
        }
    }

    /// Applies one completed reply: append to the write buffer, flush
    /// opportunistically, resume parsing if the window freed.
    fn apply_done(&mut self, done: Done) {
        let Some(idx) = self.resolve(done.token) else { return };
        let conn = self.slots[idx].conn.as_mut().expect("resolved conn");
        conn.pending -= 1;
        if !conn.dead {
            conn.wbuf.extend_from_slice(&done.bytes);
        }
        self.try_flush(idx);
        // The window (or the write backlog) may have freed: frames still
        // buffered in rbuf become parseable again.
        self.parse_frames(idx);
        self.finish_conn_turn(idx);
    }

    /// Writes as much of the backlog as the socket absorbs; partial
    /// writes keep their position and resume on `EPOLLOUT`.
    fn try_flush(&mut self, idx: usize) {
        let conn = self.slots[idx].conn.as_mut().expect("resolved conn");
        if conn.dead {
            conn.wbuf.clear();
            conn.wpos = 0;
            conn.stalled_since = None;
            return;
        }
        while conn.wpos < conn.wbuf.len() {
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    conn.wpos += n;
                    conn.stalled_since = None;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if conn.stalled_since.is_none() {
                        conn.stalled_since = Some(Instant::now());
                    }
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        if conn.dead || conn.wpos == conn.wbuf.len() {
            // Dead: discard everything. Fully flushed: reset for reuse.
            conn.wbuf.clear();
            conn.wpos = 0;
            conn.stalled_since = None;
        } else if conn.wpos >= 64 * 1024 {
            // Compact so the buffer doesn't grow monotonically under a
            // slow reader.
            conn.wbuf.drain(..conn.wpos);
            conn.wpos = 0;
        }
    }

    /// Post-activity bookkeeping: re-register interest, close if done.
    fn finish_conn_turn(&mut self, idx: usize) {
        let Some(conn) = self.slots[idx].conn.as_ref() else { return };
        if conn.done_for_good() {
            self.close_conn(idx);
            return;
        }
        let window = self.shared.net.inflight_window;
        let conn = self.slots[idx].conn.as_mut().expect("resolved conn");
        let paused = conn.pending >= window || conn.backlog() >= WBUF_PAUSE;
        let desired = Interest {
            readable: !conn.eof && !conn.aborted && !conn.dead && !paused,
            writable: !conn.dead && conn.backlog() > 0,
        };
        if desired != conn.interest {
            let token = token_of(self.slots[idx].gen, idx);
            let conn = self.slots[idx].conn.as_mut().expect("resolved conn");
            if self.epoll.modify(conn.stream.as_raw_fd(), token, desired).is_ok() {
                conn.interest = desired;
            } else {
                conn.dead = true;
            }
        }
    }

    /// Closes and frees one connection slot.
    fn close_conn(&mut self, idx: usize) {
        let conn = self.slots[idx].conn.take().expect("resolved conn");
        let _ = self.epoll.delete(conn.stream.as_raw_fd());
        let _ = conn.stream.shutdown(Shutdown::Both);
        drop(conn);
        self.slots[idx].gen = self.slots[idx].gen.wrapping_add(1);
        self.free.push(idx);
        self.live -= 1;
        self.shared.active.fetch_sub(1, Ordering::AcqRel);
        if let Some(instruments) = &self.shared.instruments {
            instruments.conns.sub(1);
        }
    }

    /// Periodic maintenance over live connections: write-deadline
    /// enforcement, shutdown fencing, deferred closes.
    fn sweep(&mut self, shutting_down: bool) {
        let write_timeout = self.shared.net.write_timeout;
        for idx in 0..self.slots.len() {
            let Some(conn) = self.slots[idx].conn.as_mut() else { continue };
            if shutting_down && !conn.eof {
                // Stop reading; buffered frames were already parsed, and
                // everything owed still flushes before the close.
                conn.eof = true;
            }
            if let Some(since) = conn.stalled_since {
                if since.elapsed() >= write_timeout {
                    conn.dead = true;
                }
            }
            if conn.backlog() > 0 && !conn.dead {
                self.try_flush(idx);
            }
            self.finish_conn_turn(idx);
        }
    }
}

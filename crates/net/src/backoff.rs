//! Backoff policies: accept-error classification with capped exponential
//! pauses on the server side, and decorrelated-jitter reconnect pauses on
//! the client side.
//!
//! `accept()` fails in two very different ways. Per-connection errors
//! (`ECONNABORTED`: the peer reset between SYN and accept) are free to
//! retry immediately. Resource exhaustion (`EMFILE`/`ENFILE`: fd limits;
//! `ENOMEM`/`ENOBUFS`: kernel memory) is *not* — the failed connection is
//! still in the accept queue, so an immediate retry spins the acceptor at
//! 100% CPU re-hitting the same error. [`AcceptBackoff`] sleeps through
//! exhaustion with exponentially growing, capped pauses and resets as
//! soon as an accept succeeds.
//!
//! `std::io::ErrorKind` has no stable variants for the exhaustion errnos,
//! so classification reads `raw_os_error` against the Linux values.
//!
//! [`ReconnectBackoff`] paces a client's dial retries. A deterministic
//! doubling schedule synchronises every client of a dead server: they
//! all sleep the same amounts from the same trigger and reconnect in
//! lockstep — a thundering herd exactly when the server is weakest
//! (just recovered). Decorrelated jitter (`next = clamp(base, cap,
//! uniform(base, 3 × previous))`) keeps the same capped exponential
//! *envelope* but desynchronises the fleet: each client's schedule is an
//! independent random walk inside `[base, cap]`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Linux errno values with no stable `io::ErrorKind` mapping.
const ENOMEM: i32 = 12;
const ENFILE: i32 = 23;
const EMFILE: i32 = 24;
const ECONNABORTED: i32 = 103;
const ENOBUFS: i32 = 105;

/// How the acceptor should react to one `accept()` error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AcceptErrorClass {
    /// Transient, scoped to one connection attempt — retry immediately.
    Transient,
    /// A resource limit (fds, kernel memory) — back off before retrying.
    Exhausted,
}

/// Classifies an `accept()` error by its OS errno.
pub(crate) fn classify_accept_error(err: &std::io::Error) -> AcceptErrorClass {
    match err.raw_os_error() {
        Some(EMFILE | ENFILE | ENOMEM | ENOBUFS) => AcceptErrorClass::Exhausted,
        // The peer reset between SYN and accept: scoped to one attempt.
        Some(ECONNABORTED) => AcceptErrorClass::Transient,
        // EINTR, unknown errnos, non-OS errors: the next accept is
        // expected to behave normally.
        _ => AcceptErrorClass::Transient,
    }
}

/// Exponential accept backoff, capped, reset on success.
#[derive(Debug)]
pub(crate) struct AcceptBackoff {
    /// First pause after entering exhaustion.
    initial: Duration,
    /// Largest pause the exponential growth is clamped to.
    cap: Duration,
    /// Consecutive exhaustion errors since the last success.
    streak: u32,
}

impl AcceptBackoff {
    /// 10ms initial pause doubling to a 500ms cap — long enough to let
    /// fds free up, short enough that recovery is prompt.
    pub(crate) fn new() -> Self {
        Self::with_limits(Duration::from_millis(10), Duration::from_millis(500))
    }

    pub(crate) fn with_limits(initial: Duration, cap: Duration) -> Self {
        Self { initial, cap, streak: 0 }
    }

    /// Records one failed accept and returns how long to pause before
    /// retrying: `None` (retry now) for transient errors, a capped
    /// exponentially growing pause for exhaustion.
    pub(crate) fn on_error(&mut self, err: &std::io::Error) -> Option<Duration> {
        match classify_accept_error(err) {
            AcceptErrorClass::Transient => None,
            AcceptErrorClass::Exhausted => {
                let exp = self.streak.min(16); // 2^16 × initial is already past any sane cap
                self.streak = self.streak.saturating_add(1);
                Some(self.initial.saturating_mul(1u32 << exp).min(self.cap))
            }
        }
    }

    /// Records a successful accept, ending the failure streak.
    pub(crate) fn on_success(&mut self) {
        self.streak = 0;
    }

    /// Consecutive exhaustion errors since the last success.
    #[cfg(test)]
    pub(crate) fn streak(&self) -> u32 {
        self.streak
    }
}

/// A process-unique component for [`entropy_seed`], so two backoffs
/// created in the same nanosecond still diverge.
static SEED_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A cheap non-cryptographic seed for jittered backoff: wall-clock
/// nanoseconds mixed with a process-global counter. Distinct processes
/// (the thundering-herd concern) and distinct call sites within one
/// process both get distinct streams.
pub(crate) fn entropy_seed() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_nanos() & u128::from(u64::MAX)).unwrap_or(0));
    let count = SEED_COUNTER.fetch_add(1, Ordering::Relaxed);
    // SplitMix64-style avalanche so close seeds produce unrelated streams.
    let mut z = nanos ^ count.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Decorrelated-jitter reconnect backoff: every delay is drawn uniformly
/// from `[base, min(cap, 3 × previous)]`, so the envelope grows like a
/// capped exponential while concurrent clients never sleep in lockstep.
#[derive(Debug)]
pub(crate) struct ReconnectBackoff {
    base: Duration,
    cap: Duration,
    prev: Duration,
    rng: StdRng,
}

impl ReconnectBackoff {
    /// `base` is the first delay's lower bound (and the floor of every
    /// delay); `cap >= base` clamps the growth.
    pub(crate) fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        let cap = cap.max(base);
        Self { base, cap, prev: base, rng: StdRng::seed_from_u64(seed) }
    }

    /// Draws the next delay, always within `[base, cap]`.
    pub(crate) fn next_delay(&mut self) -> Duration {
        let base_us = self.base.as_micros().max(1) as u64;
        let cap_us = u64::try_from(self.cap.as_micros()).unwrap_or(u64::MAX).max(base_us);
        let prev_us = u64::try_from(self.prev.as_micros()).unwrap_or(u64::MAX).max(base_us);
        let hi_us = prev_us.saturating_mul(3).min(cap_us);
        let drawn = if hi_us <= base_us {
            base_us
        } else {
            // hi_us < u64::MAX here (it is capped), so +1 cannot wrap.
            self.rng.random_range(base_us..hi_us + 1)
        };
        self.prev = Duration::from_micros(drawn);
        self.prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;

    fn os_err(errno: i32) -> io::Error {
        io::Error::from_raw_os_error(errno)
    }

    #[test]
    fn connaborted_is_transient_and_does_not_pause() {
        let mut backoff = AcceptBackoff::new();
        assert_eq!(classify_accept_error(&os_err(ECONNABORTED)), AcceptErrorClass::Transient);
        assert_eq!(backoff.on_error(&os_err(ECONNABORTED)), None);
        assert_eq!(backoff.streak(), 0);
    }

    #[test]
    fn fd_exhaustion_backs_off_exponentially_to_the_cap() {
        let mut backoff = AcceptBackoff::with_limits(Duration::from_millis(10), Duration::from_millis(500));
        let emfile = os_err(EMFILE);
        assert_eq!(backoff.on_error(&emfile), Some(Duration::from_millis(10)));
        assert_eq!(backoff.on_error(&emfile), Some(Duration::from_millis(20)));
        assert_eq!(backoff.on_error(&emfile), Some(Duration::from_millis(40)));
        // ENFILE joins the same streak.
        assert_eq!(backoff.on_error(&os_err(ENFILE)), Some(Duration::from_millis(80)));
        // The growth clamps at the cap and stays there.
        for _ in 0..40 {
            let pause = backoff.on_error(&emfile).expect("exhaustion pauses");
            assert!(pause <= Duration::from_millis(500));
        }
        assert_eq!(backoff.on_error(&emfile), Some(Duration::from_millis(500)));
    }

    #[test]
    fn success_resets_the_streak() {
        let mut backoff = AcceptBackoff::new();
        let emfile = os_err(EMFILE);
        for _ in 0..5 {
            backoff.on_error(&emfile);
        }
        assert!(backoff.streak() > 0);
        backoff.on_success();
        assert_eq!(backoff.on_error(&emfile), Some(Duration::from_millis(10)), "streak restarted");
    }

    #[test]
    fn kernel_memory_errors_also_back_off() {
        let mut backoff = AcceptBackoff::new();
        assert!(backoff.on_error(&os_err(ENOMEM)).is_some());
        assert!(backoff.on_error(&os_err(ENOBUFS)).is_some());
    }

    #[test]
    fn non_os_errors_are_transient() {
        let mut backoff = AcceptBackoff::new();
        let err = io::Error::other("synthetic");
        assert_eq!(backoff.on_error(&err), None);
    }

    const BASE: Duration = Duration::from_millis(10);
    const CAP: Duration = Duration::from_secs(1);

    #[test]
    fn jitter_stays_within_base_and_cap() {
        for seed in 0..64 {
            let mut backoff = ReconnectBackoff::new(BASE, CAP, seed);
            let mut prev = BASE;
            for step in 0..50 {
                let delay = backoff.next_delay();
                assert!(delay >= BASE, "seed {seed} step {step}: {delay:?} below base");
                assert!(delay <= CAP, "seed {seed} step {step}: {delay:?} above cap");
                // The decorrelated envelope: never more than 3x the
                // previous delay (and never above the cap).
                assert!(delay <= (prev * 3).min(CAP), "seed {seed} step {step}: {delay:?} outside envelope");
                prev = delay;
            }
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed_but_decorrelated_across_seeds() {
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut b = ReconnectBackoff::new(BASE, CAP, seed);
            (0..8).map(|_| b.next_delay()).collect()
        };
        assert_eq!(schedule(7), schedule(7), "same seed must replay the same schedule");
        let distinct: std::collections::HashSet<Vec<Duration>> = (0..16).map(schedule).collect();
        assert!(distinct.len() > 8, "schedules must not collapse into lockstep: {} distinct", distinct.len());
    }

    #[test]
    fn jitter_degenerate_ranges_clamp_to_base() {
        // cap == base: every delay is exactly base.
        let mut b = ReconnectBackoff::new(BASE, BASE, 3);
        for _ in 0..10 {
            assert_eq!(b.next_delay(), BASE);
        }
        // cap < base is repaired to cap == base rather than panicking.
        let mut b = ReconnectBackoff::new(BASE, Duration::from_millis(1), 3);
        assert_eq!(b.next_delay(), BASE);
    }

    #[test]
    fn entropy_seeds_differ_within_a_process() {
        let a = entropy_seed();
        let b = entropy_seed();
        assert_ne!(a, b);
    }
}

//! Accept-error classification and capped backoff.
//!
//! `accept()` fails in two very different ways. Per-connection errors
//! (`ECONNABORTED`: the peer reset between SYN and accept) are free to
//! retry immediately. Resource exhaustion (`EMFILE`/`ENFILE`: fd limits;
//! `ENOMEM`/`ENOBUFS`: kernel memory) is *not* — the failed connection is
//! still in the accept queue, so an immediate retry spins the acceptor at
//! 100% CPU re-hitting the same error. [`AcceptBackoff`] sleeps through
//! exhaustion with exponentially growing, capped pauses and resets as
//! soon as an accept succeeds.
//!
//! `std::io::ErrorKind` has no stable variants for the exhaustion errnos,
//! so classification reads `raw_os_error` against the Linux values.

use std::time::Duration;

/// Linux errno values with no stable `io::ErrorKind` mapping.
const ENOMEM: i32 = 12;
const ENFILE: i32 = 23;
const EMFILE: i32 = 24;
const ECONNABORTED: i32 = 103;
const ENOBUFS: i32 = 105;

/// How the acceptor should react to one `accept()` error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AcceptErrorClass {
    /// Transient, scoped to one connection attempt — retry immediately.
    Transient,
    /// A resource limit (fds, kernel memory) — back off before retrying.
    Exhausted,
}

/// Classifies an `accept()` error by its OS errno.
pub(crate) fn classify_accept_error(err: &std::io::Error) -> AcceptErrorClass {
    match err.raw_os_error() {
        Some(EMFILE | ENFILE | ENOMEM | ENOBUFS) => AcceptErrorClass::Exhausted,
        // The peer reset between SYN and accept: scoped to one attempt.
        Some(ECONNABORTED) => AcceptErrorClass::Transient,
        // EINTR, unknown errnos, non-OS errors: the next accept is
        // expected to behave normally.
        _ => AcceptErrorClass::Transient,
    }
}

/// Exponential accept backoff, capped, reset on success.
#[derive(Debug)]
pub(crate) struct AcceptBackoff {
    /// First pause after entering exhaustion.
    initial: Duration,
    /// Largest pause the exponential growth is clamped to.
    cap: Duration,
    /// Consecutive exhaustion errors since the last success.
    streak: u32,
}

impl AcceptBackoff {
    /// 10ms initial pause doubling to a 500ms cap — long enough to let
    /// fds free up, short enough that recovery is prompt.
    pub(crate) fn new() -> Self {
        Self::with_limits(Duration::from_millis(10), Duration::from_millis(500))
    }

    pub(crate) fn with_limits(initial: Duration, cap: Duration) -> Self {
        Self { initial, cap, streak: 0 }
    }

    /// Records one failed accept and returns how long to pause before
    /// retrying: `None` (retry now) for transient errors, a capped
    /// exponentially growing pause for exhaustion.
    pub(crate) fn on_error(&mut self, err: &std::io::Error) -> Option<Duration> {
        match classify_accept_error(err) {
            AcceptErrorClass::Transient => None,
            AcceptErrorClass::Exhausted => {
                let exp = self.streak.min(16); // 2^16 × initial is already past any sane cap
                self.streak = self.streak.saturating_add(1);
                Some(self.initial.saturating_mul(1u32 << exp).min(self.cap))
            }
        }
    }

    /// Records a successful accept, ending the failure streak.
    pub(crate) fn on_success(&mut self) {
        self.streak = 0;
    }

    /// Consecutive exhaustion errors since the last success.
    #[cfg(test)]
    pub(crate) fn streak(&self) -> u32 {
        self.streak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;

    fn os_err(errno: i32) -> io::Error {
        io::Error::from_raw_os_error(errno)
    }

    #[test]
    fn connaborted_is_transient_and_does_not_pause() {
        let mut backoff = AcceptBackoff::new();
        assert_eq!(classify_accept_error(&os_err(ECONNABORTED)), AcceptErrorClass::Transient);
        assert_eq!(backoff.on_error(&os_err(ECONNABORTED)), None);
        assert_eq!(backoff.streak(), 0);
    }

    #[test]
    fn fd_exhaustion_backs_off_exponentially_to_the_cap() {
        let mut backoff = AcceptBackoff::with_limits(Duration::from_millis(10), Duration::from_millis(500));
        let emfile = os_err(EMFILE);
        assert_eq!(backoff.on_error(&emfile), Some(Duration::from_millis(10)));
        assert_eq!(backoff.on_error(&emfile), Some(Duration::from_millis(20)));
        assert_eq!(backoff.on_error(&emfile), Some(Duration::from_millis(40)));
        // ENFILE joins the same streak.
        assert_eq!(backoff.on_error(&os_err(ENFILE)), Some(Duration::from_millis(80)));
        // The growth clamps at the cap and stays there.
        for _ in 0..40 {
            let pause = backoff.on_error(&emfile).expect("exhaustion pauses");
            assert!(pause <= Duration::from_millis(500));
        }
        assert_eq!(backoff.on_error(&emfile), Some(Duration::from_millis(500)));
    }

    #[test]
    fn success_resets_the_streak() {
        let mut backoff = AcceptBackoff::new();
        let emfile = os_err(EMFILE);
        for _ in 0..5 {
            backoff.on_error(&emfile);
        }
        assert!(backoff.streak() > 0);
        backoff.on_success();
        assert_eq!(backoff.on_error(&emfile), Some(Duration::from_millis(10)), "streak restarted");
    }

    #[test]
    fn kernel_memory_errors_also_back_off() {
        let mut backoff = AcceptBackoff::new();
        assert!(backoff.on_error(&os_err(ENOMEM)).is_some());
        assert!(backoff.on_error(&os_err(ENOBUFS)).is_some());
    }

    #[test]
    fn non_os_errors_are_transient() {
        let mut backoff = AcceptBackoff::new();
        let err = io::Error::other("synthetic");
        assert_eq!(backoff.on_error(&err), None);
    }
}

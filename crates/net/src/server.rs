//! The multithreaded TCP frontend over [`offloadnn_serve::Service`].
//!
//! ## Threading model
//!
//! ```text
//! acceptor thread ──┬── conn-0 reader ── conn-0 writer
//!                   ├── conn-1 reader ── conn-1 writer
//!                   └── ...                 │
//!                        │                  └─ waits Tickets, encodes
//!                        └─ decodes frames,    responses, writes
//!                           submits to Service
//! ```
//!
//! One acceptor thread owns the listener. Each accepted connection gets a
//! *reader* thread (decodes frames, feeds the service) and a *writer*
//! thread (redeems [`Ticket`]s for verdicts and writes responses). The
//! channel between them is bounded by [`NetConfig::inflight_window`]: a
//! client that pipelines more submits than the window simply stops being
//! read — backpressure propagates through the TCP receive buffer instead
//! of growing server memory.
//!
//! ## Drain semantics
//!
//! A [`Frame::Drain`] request (or [`NetServer::shutdown`]) fences the
//! ingress via [`Service::begin_drain`]: subsequent submits are answered
//! [`ErrorCode::Draining`], while every request already inside the
//! service still resolves and its outcome is *flushed to the client*
//! before the connection closes — the writer thread drains its whole
//! queue before exiting, so drain never strands an in-flight verdict.

use crate::backend::{Backend, PendingOutcome};
use crate::backoff::AcceptBackoff;
use crate::codec::{self, ErrorCode, ErrorResponse, Frame, MetricsResponse, OutcomeResponse, ScaleResponse};
use crate::error::NetError;
use crate::instruments::NetInstruments;
use crossbeam::channel::{self, Receiver, Sender};
use offloadnn_core::instance::DotInstance;
use offloadnn_serve::{DrainReport, Service, ServiceConfig};
use offloadnn_telemetry::{event, Severity};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs of the TCP frontend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Maximum simultaneously served connections; further connects are
    /// answered [`ErrorCode::TooManyConnections`] and closed.
    pub max_connections: usize,
    /// Bound of each connection's submitted-but-unanswered window. A
    /// client pipelining past it stops being read until verdicts flush
    /// (backpressure through the socket, not server memory).
    pub inflight_window: usize,
    /// Socket read timeout — the cadence at which an idle reader rechecks
    /// the shutdown/drain flags.
    pub read_timeout: Duration,
    /// Socket write timeout; a connection that cannot absorb its
    /// responses this long is considered dead.
    pub write_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            max_connections: 256,
            inflight_window: 256,
            read_timeout: Duration::from_millis(50),
            write_timeout: Duration::from_secs(5),
        }
    }
}

impl NetConfig {
    /// Validates every field.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), NetError> {
        if self.max_connections == 0 {
            return Err(NetError::InvalidConfig("max_connections must be >= 1"));
        }
        if self.inflight_window == 0 {
            return Err(NetError::InvalidConfig("inflight_window must be >= 1"));
        }
        if self.read_timeout.is_zero() {
            return Err(NetError::InvalidConfig("read_timeout must be > 0"));
        }
        if self.write_timeout.is_zero() {
            return Err(NetError::InvalidConfig("write_timeout must be > 0"));
        }
        Ok(())
    }
}

/// What a reader queues for its connection's writer thread.
#[allow(clippy::large_enum_variant)] // transient, bounded queue; see Frame
enum WriterMsg<P: PendingOutcome> {
    /// A submitted request: redeem the ticket, send the outcome.
    Verdict { request_id: u64, ticket: P },
    /// An already-built response frame.
    Reply(Frame),
    /// Snapshot the service *at send time* and reply with a final
    /// metrics frame (the drain acknowledgement).
    FinalMetrics { request_id: u64 },
}

/// State shared by the acceptor and every connection thread.
struct Shared<B: Backend> {
    service: B,
    net: NetConfig,
    shutdown: AtomicBool,
    active: AtomicUsize,
    conns: Mutex<Vec<JoinHandle<()>>>,
    instruments: Option<NetInstruments>,
    /// Armed by [`NetServer::announce_to`]; fired (once) when the node
    /// drains or shuts down, so the gateway deregisters it gracefully.
    leave_notice: Mutex<Option<Arc<crate::backend::LeaveNotice>>>,
}

/// A running TCP frontend over any [`Backend`] (an in-process
/// [`Service`] fleet by default). Start with [`NetServer::start`] (or
/// [`NetServer::start_with_backend`]); stop with [`NetServer::shutdown`],
/// which drains the backend and returns its final [`DrainReport`].
pub struct NetServer<B: Backend = Service> {
    local_addr: SocketAddr,
    shared: Arc<Shared<B>>,
    acceptor: Option<JoinHandle<()>>,
}

impl<B: Backend> std::fmt::Debug for NetServer<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer").field("local_addr", &self.local_addr).finish_non_exhaustive()
    }
}

impl NetServer<Service> {
    /// Binds `addr` (use port 0 for an ephemeral port — see
    /// [`NetServer::local_addr`]), starts the shard fleet and the
    /// acceptor thread.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidConfig`] for bad configuration,
    /// [`NetError::Io`] if the bind fails.
    pub fn start(
        addr: impl ToSocketAddrs,
        net: NetConfig,
        service_config: ServiceConfig,
        template: &DotInstance,
    ) -> Result<Self, NetError> {
        let service = Service::start(service_config, template).map_err(|e| {
            NetError::InvalidConfig(match e {
                offloadnn_serve::ServeError::InvalidConfig(what) => what,
                // Unreachable at start, but keep the mapping total.
                offloadnn_serve::ServeError::Draining => "service is draining",
            })
        })?;
        Self::start_with_backend(addr, net, service)
    }
}

impl<B: Backend> NetServer<B> {
    /// Binds `addr` and serves an already-running backend (e.g. a
    /// cluster gateway) over the same wire protocol and threading model
    /// as [`NetServer::start`].
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidConfig`] for bad configuration,
    /// [`NetError::Io`] if the bind fails.
    pub fn start_with_backend(
        addr: impl ToSocketAddrs,
        net: NetConfig,
        backend: B,
    ) -> Result<Self, NetError> {
        net.validate()?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service: backend,
            net,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            conns: Mutex::new(Vec::new()),
            instruments: NetInstruments::new(),
            leave_notice: Mutex::new(None),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("net-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn acceptor")
        };
        event!(
            Severity::Info,
            "net.server",
            "listening on {local_addr}: {} conn(s) max, window {}",
            net.max_connections,
            net.inflight_window
        );
        Ok(Self { local_addr, shared, acceptor: Some(acceptor) })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Point-in-time metrics of the underlying backend.
    pub fn metrics(&self) -> offloadnn_serve::MetricsSnapshot {
        self.shared.service.metrics()
    }

    /// Whether a drain has begun (via [`Frame::Drain`] or
    /// [`NetServer::shutdown`]).
    pub fn is_draining(&self) -> bool {
        self.shared.service.is_draining()
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Reshapes the underlying backend at runtime (the server-side twin
    /// of a client's [`Frame::Scale`]); traffic keeps flowing
    /// throughout. See [`Backend::scale_to`].
    ///
    /// # Errors
    ///
    /// Propagates [`Backend::scale_to`] errors.
    pub fn scale_to(
        &self,
        shards: usize,
    ) -> Result<offloadnn_serve::ReshardReport, offloadnn_serve::ServeError> {
        self.shared.service.scale_to(shards)
    }

    /// Registers this node with a gateway's membership engine (protocol
    /// v3): sends an [`Frame::Announce`] carrying [`NetServer::local_addr`]
    /// under a fresh wall-clock incarnation, and arms a graceful
    /// [`Frame::Leave`] to fire when the node drains or shuts down. The
    /// gateway health-probes the node before routing any traffic to it
    /// (join-through-probation).
    ///
    /// # Errors
    ///
    /// Transport errors when the gateway cannot be reached or does not
    /// answer; the announce can simply be retried.
    pub fn announce_to(&self, gateway: SocketAddr) -> Result<codec::MembershipResponse, NetError> {
        // Startup wall-clock nanoseconds: monotonic across restarts of
        // the same node (modulo clock regression), which is all the
        // incarnation ordering needs.
        let incarnation = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(1, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            .max(1);
        self.announce_to_as(gateway, incarnation)
    }

    /// [`NetServer::announce_to`] with an explicit incarnation stamp
    /// (tests and restart simulations pick their own ordering).
    ///
    /// # Errors
    ///
    /// As [`NetServer::announce_to`].
    pub fn announce_to_as(
        &self,
        gateway: SocketAddr,
        incarnation: u64,
    ) -> Result<codec::MembershipResponse, NetError> {
        let config = crate::backend::membership_client_config();
        let timeout = crate::backend::MEMBERSHIP_RPC_TIMEOUT;
        let client = crate::client::Client::connect(gateway, config)?;
        let addr = self.local_addr.to_string();
        let reply = client.announce(&addr, incarnation, timeout)?;
        let notice = Arc::new(crate::backend::LeaveNotice::new(gateway, addr, incarnation, config, timeout));
        // Preferred path: the backend tells us when its drain begins
        // (a wire-level Drain frame fences the service without passing
        // through shutdown()). Fallback either way: shutdown() fires the
        // stored notice, and firing is idempotent.
        let hook_notice = Arc::clone(&notice);
        let _ = self.shared.service.on_drain(Box::new(move || hook_notice.fire()));
        *self.shared.leave_notice.lock().expect("leave notice lock") = Some(notice);
        Ok(reply)
    }

    /// Gracefully stops the frontend: fences the ingress, wakes and joins
    /// the acceptor, lets every connection flush its in-flight outcomes
    /// to its client, joins the connection threads, then drains the
    /// underlying service and returns its final report.
    pub fn shutdown(mut self) -> DrainReport {
        // Deregister from the gateway (if announced) before fencing, so
        // the cluster stops routing to this node while its in-flight
        // work can still resolve.
        if let Some(notice) = self.shared.leave_notice.lock().expect("leave notice lock").take() {
            notice.fire();
        }
        self.shared.service.begin_drain();
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake the acceptor out of its blocking accept().
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let handles = std::mem::take(&mut *self.shared.conns.lock().expect("conns lock"));
        for h in handles {
            let _ = h.join();
        }
        event!(Severity::Info, "net.server", "frontend stopped on {}", self.local_addr);
        let shared = Arc::try_unwrap(self.shared)
            .unwrap_or_else(|_| panic!("all connection threads joined, no Shared clones remain"));
        shared.service.drain()
    }
}

fn accept_loop<B: Backend>(listener: &TcpListener, shared: &Arc<Shared<B>>) {
    let mut next_conn_id: u64 = 0;
    let mut backoff = AcceptBackoff::new();
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let stream = match listener.accept() {
            Ok((s, _)) => {
                backoff.on_success();
                s
            }
            Err(e) => {
                // ECONNABORTED and friends retry immediately; fd/memory
                // exhaustion (EMFILE/ENFILE/...) pauses with capped
                // exponential backoff so the acceptor cannot spin on an
                // error the very next accept would re-hit.
                event!(Severity::Warn, "net.server", "accept failed: {e}");
                if let Some(pause) = backoff.on_error(&e) {
                    std::thread::sleep(pause);
                }
                continue;
            }
        };
        let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "?".into());
        if shared.active.load(Ordering::Acquire) >= shared.net.max_connections {
            event!(Severity::Warn, "net.server", "rejecting {peer}: connection limit reached");
            reject_over_limit(stream, shared.net.write_timeout);
            continue;
        }
        let conn_id = next_conn_id;
        next_conn_id += 1;
        shared.active.fetch_add(1, Ordering::AcqRel);
        if let Some(instruments) = &shared.instruments {
            instruments.conns.add(1);
        }
        event!(Severity::Info, "net.server", "conn {conn_id}: accepted from {peer}");
        let shared_conn = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name(format!("net-conn-{conn_id}"))
            .spawn(move || {
                serve_connection(conn_id, stream, &shared_conn);
                shared_conn.active.fetch_sub(1, Ordering::AcqRel);
                if let Some(instruments) = &shared_conn.instruments {
                    instruments.conns.sub(1);
                }
            })
            .expect("spawn connection thread");
        shared.conns.lock().expect("conns lock").push(handle);
    }
}

/// Best-effort "too many connections" notice before dropping the socket.
/// Shared by both frontends.
pub(crate) fn reject_over_limit(mut stream: TcpStream, write_timeout: Duration) {
    let _ = stream.set_write_timeout(Some(write_timeout));
    let frame = Frame::Error(ErrorResponse {
        request_id: 0,
        code: ErrorCode::TooManyConnections,
        message: "server is at its connection limit".to_owned(),
    });
    let _ = stream.write_all(&codec::encode(&frame));
    let _ = stream.shutdown(Shutdown::Both);
}

/// The per-connection reader: decodes frames off the socket and feeds
/// the service; spawns and finally joins the connection's writer.
fn serve_connection<B: Backend>(conn_id: u64, stream: TcpStream, shared: &Arc<Shared<B>>) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(shared.net.read_timeout)).is_err() {
        return;
    }
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let _ = write_half.set_write_timeout(Some(shared.net.write_timeout));

    let (tx, rx) = channel::bounded::<WriterMsg<B::Pending>>(shared.net.inflight_window);
    let writer = {
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name(format!("net-conn-{conn_id}-w"))
            .spawn(move || write_loop(&rx, write_half, &shared))
            .expect("spawn connection writer")
    };

    read_loop(stream, shared, &tx);

    // Dropping the sender lets the writer drain its queue — every queued
    // verdict is redeemed and flushed before the connection dies.
    drop(tx);
    let _ = writer.join();
    event!(Severity::Info, "net.server", "conn {conn_id}: closed");
}

fn read_loop<B: Backend>(mut stream: TcpStream, shared: &Arc<Shared<B>>, tx: &Sender<WriterMsg<B::Pending>>) {
    let mut buf: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut chunk = [0u8; 16 * 1024];
    loop {
        // Parse every complete frame currently buffered.
        loop {
            match codec::decode(&buf) {
                Ok(Some((frame, consumed))) => {
                    buf.drain(..consumed);
                    if !handle_frame(frame, shared, tx) {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    event!(Severity::Warn, "net.server", "protocol error, closing: {e}");
                    let _ = tx.send(WriterMsg::Reply(Frame::Error(ErrorResponse {
                        request_id: 0,
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    })));
                    return;
                }
            }
        }
        // Stop reading once shutdown began (buffered frames above were
        // still served): a peer that keeps sending — e.g. a gateway
        // health prober snapshotting on an interval shorter than the
        // read timeout — must not be able to hold the drain open
        // forever. Owed verdicts still flush through the writer.
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Dispatches one decoded request. Returns `false` when the connection
/// must close.
fn handle_frame<B: Backend>(
    frame: Frame,
    shared: &Arc<Shared<B>>,
    tx: &Sender<WriterMsg<B::Pending>>,
) -> bool {
    match frame {
        Frame::Submit(req) => {
            // deadline_us == 0 is the wire encoding of "no client
            // deadline": the backend applies its own policy default.
            let budget = (req.deadline_us != 0).then(|| Duration::from_micros(req.deadline_us));
            let msg = match shared.service.submit(req.task, req.options, budget) {
                Ok(ticket) => WriterMsg::Verdict { request_id: req.request_id, ticket },
                Err(e) => WriterMsg::Reply(Frame::Error(ErrorResponse {
                    request_id: req.request_id,
                    code: e.into(),
                    message: e.to_string(),
                })),
            };
            // A full window blocks here: backpressure through the socket.
            tx.send(msg).is_ok()
        }
        Frame::Depart(req) => {
            shared.service.depart(req.task);
            true
        }
        Frame::Snapshot(req) => tx
            .send(WriterMsg::Reply(Frame::Metrics(MetricsResponse {
                request_id: req.request_id,
                is_final: false,
                metrics: shared.service.metrics(),
            })))
            .is_ok(),
        Frame::Drain(req) => {
            event!(Severity::Info, "net.server", "drain requested (request {})", req.request_id);
            shared.service.begin_drain();
            // Queued behind every verdict already in this connection's
            // window, so the snapshot it carries is taken post-flush.
            tx.send(WriterMsg::FinalMetrics { request_id: req.request_id }).is_ok()
        }
        Frame::Scale(req) => {
            event!(
                Severity::Info,
                "net.server",
                "scale to {} shard(s) requested (request {})",
                req.shards,
                req.request_id
            );
            // Runs on the reader thread: this connection's pipelined
            // frames wait in the TCP buffer while the fleet reshapes
            // (milliseconds), other connections are untouched.
            let reply = match shared.service.scale_to(req.shards as usize) {
                Ok(r) => Frame::Scaled(ScaleResponse {
                    request_id: req.request_id,
                    from_shards: r.from_shards as u32,
                    to_shards: r.to_shards as u32,
                    migrated: r.migrated,
                    generation: r.generation,
                }),
                Err(e) => Frame::Error(ErrorResponse {
                    request_id: req.request_id,
                    code: ErrorCode::InvalidScale,
                    message: e.to_string(),
                }),
            };
            tx.send(WriterMsg::Reply(reply)).is_ok()
        }
        Frame::Announce(req) => {
            let reply = crate::backend::membership_frame(
                &shared.service,
                req.request_id,
                &req.addr,
                req.incarnation,
                false,
            );
            tx.send(WriterMsg::Reply(reply)).is_ok()
        }
        Frame::Leave(req) => {
            let reply = crate::backend::membership_frame(
                &shared.service,
                req.request_id,
                &req.addr,
                req.incarnation,
                true,
            );
            tx.send(WriterMsg::Reply(reply)).is_ok()
        }
        Frame::PeerHello(req) => {
            let reply = match shared.service.peer_load(&req.addr, req.incarnation) {
                Some(d) => Frame::PeerLoad(crate::codec::PeerLoadResponse {
                    request_id: req.request_id,
                    healthy_nodes: d.healthy_nodes,
                    remaining_budget: d.remaining_budget,
                    round_ms_p50: d.round_ms_p50,
                    epoch: d.epoch,
                }),
                None => Frame::Error(ErrorResponse {
                    request_id: req.request_id,
                    code: ErrorCode::Internal,
                    message: "backend is not a federation gateway".to_owned(),
                }),
            };
            tx.send(WriterMsg::Reply(reply)).is_ok()
        }
        Frame::Forward(req) => {
            // Same shape as Submit, but the budget is the *remaining*
            // deadline carried from the origin gateway, and the backend
            // sees the hop/tried metadata for loop-free re-forwarding.
            let budget = (req.deadline_us != 0).then(|| Duration::from_micros(req.deadline_us));
            let info = crate::backend::ForwardInfo { origin: req.origin, tried: req.tried, hops: req.hops };
            let msg = match shared.service.forward(req.task, req.options, budget, info) {
                Ok(ticket) => WriterMsg::Verdict { request_id: req.request_id, ticket },
                Err(e) => WriterMsg::Reply(Frame::Error(ErrorResponse {
                    request_id: req.request_id,
                    code: e.into(),
                    message: e.to_string(),
                })),
            };
            tx.send(msg).is_ok()
        }
        // A client must not send response frames; treat as protocol abuse.
        Frame::Outcome(_)
        | Frame::Metrics(_)
        | Frame::Scaled(_)
        | Frame::Membership(_)
        | Frame::PeerLoad(_)
        | Frame::Error(_) => {
            let _ = tx.send(WriterMsg::Reply(Frame::Error(ErrorResponse {
                request_id: frame.request_id(),
                code: ErrorCode::Malformed,
                message: format!("unexpected {} frame from client", frame.type_name()),
            })));
            false
        }
    }
}

fn write_loop<B: Backend>(
    rx: &Receiver<WriterMsg<B::Pending>>,
    mut stream: TcpStream,
    shared: &Arc<Shared<B>>,
) {
    let mut out: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut alive = true;
    while let Ok(msg) = rx.recv() {
        let frame = match msg {
            WriterMsg::Verdict { request_id, ticket } => {
                let outcome = ticket.try_wait().or_else(|| {
                    // About to block on the verdict: flush what earlier
                    // requests are owed so the client is not starved by
                    // head-of-line coalescing.
                    if alive && !out.is_empty() {
                        if stream.write_all(&out).is_err() {
                            alive = false;
                        }
                        out.clear();
                    }
                    ticket.wait()
                });
                match outcome {
                    Some(outcome) => Frame::Outcome(OutcomeResponse { request_id, outcome }),
                    None => Frame::Error(ErrorResponse {
                        request_id,
                        code: ErrorCode::Internal,
                        message: "worker exited before resolving the request".to_owned(),
                    }),
                }
            }
            WriterMsg::Reply(frame) => frame,
            WriterMsg::FinalMetrics { request_id } => Frame::Metrics(MetricsResponse {
                request_id,
                is_final: true,
                metrics: shared.service.metrics(),
            }),
        };
        if !alive {
            // The socket died: keep redeeming tickets (the service side
            // must still quiesce) but stop writing.
            continue;
        }
        out.extend_from_slice(&codec::encode(&frame));
        // Coalesce while more responses are queued; flush on a lull.
        if rx.is_empty() || out.len() >= 64 * 1024 {
            if stream.write_all(&out).is_err() {
                alive = false;
            }
            out.clear();
        }
    }
    if alive {
        if !out.is_empty() {
            let _ = stream.write_all(&out);
        }
        let _ = stream.flush();
    }
    let _ = stream.shutdown(Shutdown::Both);
}

//! Byte-level primitives of the wire format: a growable little-endian
//! writer and a bounds-checked reader.
//!
//! Everything multi-byte is little-endian. Floats travel as their IEEE-754
//! bit patterns ([`f64::to_bits`]), so a round trip is bit-exact. Strings
//! and sequences carry a `u32` length prefix; the reader validates every
//! prefix against the bytes actually remaining *before* allocating, so a
//! hostile length prefix costs nothing and fails with a typed
//! [`DecodeError`] instead of an allocation blow-up or a panic.

use crate::error::DecodeError;

/// Longest string the codec accepts (64 KiB). Task names and option
/// labels are tens of bytes; anything near this limit is garbage input.
pub const MAX_STRING: u32 = 64 * 1024;

/// Append-only little-endian byte writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes (no length prefix).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string, truncated to
    /// [`MAX_STRING`] bytes at a character boundary (encode never fails;
    /// nothing in the workspace carries strings anywhere near the limit).
    pub fn put_str(&mut self, v: &str) {
        let mut s = v;
        if s.len() > MAX_STRING as usize {
            let mut end = MAX_STRING as usize;
            while !s.is_char_boundary(end) {
                end -= 1;
            }
            s = &s[..end];
        }
        self.put_u32(s.len() as u32);
        self.put_bytes(s.as_bytes());
    }

    /// Appends a sequence length prefix.
    pub fn put_seq_len(&mut self, len: usize) {
        debug_assert!(len <= u32::MAX as usize);
        self.put_u32(len as u32);
    }
}

/// Bounds-checked little-endian reader over a byte slice. Every getter
/// returns a typed [`DecodeError`] instead of panicking when the bytes
/// run out.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated { field });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self, field: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, field)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self, field: &'static str) -> Result<u16, DecodeError> {
        let b = self.take(2, field)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self, field: &'static str) -> Result<u32, DecodeError> {
        let b = self.take(4, field)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self, field: &'static str) -> Result<u64, DecodeError> {
        let b = self.take(8, field)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self, field: &'static str) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64(field)?))
    }

    /// Reads a length-prefixed UTF-8 string, bounded by [`MAX_STRING`]
    /// and by the bytes actually remaining.
    pub fn string(&mut self, field: &'static str) -> Result<String, DecodeError> {
        let len = self.u32(field)?;
        if len > MAX_STRING || len as usize > self.remaining() {
            return Err(DecodeError::OversizedString { len });
        }
        let bytes = self.take(len as usize, field)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    /// Reads a sequence length prefix, validating that `len` elements of
    /// at least `min_elem_bytes` each could fit in the remaining bytes.
    /// This makes a hostile prefix fail before any allocation.
    pub fn seq_len(&mut self, min_elem_bytes: usize, field: &'static str) -> Result<usize, DecodeError> {
        let len = self.u32(field)?;
        let need = (len as u64).saturating_mul(min_elem_bytes.max(1) as u64);
        if need > self.remaining() as u64 {
            return Err(DecodeError::OversizedSeq { len });
        }
        Ok(len as usize)
    }

    /// Fails with [`DecodeError::TrailingBytes`] unless everything was
    /// consumed.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::TrailingBytes { extra: self.remaining() });
        }
        Ok(())
    }
}

/// 32-bit FNV-1a over `bytes` — the frame checksum. Not cryptographic;
/// it exists to catch corruption and framing bugs, not adversaries.
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.125);
        w.put_str("koalas");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u16("b").unwrap(), 0xBEEF);
        assert_eq!(r.u32("c").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("d").unwrap(), u64::MAX - 1);
        assert_eq!(r.f64("e").unwrap(), -0.125);
        assert_eq!(r.string("f").unwrap(), "koalas");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.u64("x"), Err(DecodeError::Truncated { field: "x" }));
        // Failed read consumed nothing; smaller reads still work.
        assert_eq!(r.u16("y").unwrap(), 0x0201);
    }

    #[test]
    fn hostile_string_prefix_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.put_u32(u32::MAX); // claims a 4 GiB string
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.string("s"), Err(DecodeError::OversizedString { len: u32::MAX }));
    }

    #[test]
    fn hostile_seq_prefix_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.put_seq_len(1 << 30);
        w.put_u32(0);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.seq_len(8, "opts"), Err(DecodeError::OversizedSeq { len: 1 << 30 }));
    }

    #[test]
    fn non_utf8_string_is_rejected() {
        let mut w = Writer::new();
        w.put_u32(2);
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        assert_eq!(Reader::new(&bytes).string("s"), Err(DecodeError::BadUtf8));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Reference values of FNV-1a/32.
        assert_eq!(fnv1a32(b""), 0x811c_9dc5);
        assert_eq!(fnv1a32(b"a"), 0xe40c_292c);
        assert_eq!(fnv1a32(b"foobar"), 0xbf9c_f968);
    }
}

//! Frontend-shared telemetry handles.
//!
//! Both TCP frontends (threaded [`crate::server::NetServer`] and
//! readiness-driven [`crate::async_server::AsyncServer`]) report the same
//! instruments so dashboards don't care which one is deployed:
//!
//! * `net.conns` — gauge of currently served connections;
//! * `net.epoll.wakeups` — `epoll_wait` returns (reactor only);
//! * `net.readiness.read` / `net.readiness.write` — readiness events
//!   dispatched to connection state machines (reactor only).
//!
//! The handles are resolved once at server start and only when telemetry
//! is enabled; with it off (runtime switch or the `disabled` feature) the
//! whole struct is `None` and the hot paths cost one branch.

use offloadnn_telemetry::{Counter, Gauge};
use std::sync::Arc;

/// Cached instrument handles, held by a frontend's shared state.
pub(crate) struct NetInstruments {
    /// Level gauge of currently served connections.
    pub conns: Arc<Gauge>,
    /// `epoll_wait` returns across all event loops.
    pub epoll_wakeups: Arc<Counter>,
    /// Read-readiness events dispatched to connections.
    pub readiness_read: Arc<Counter>,
    /// Write-readiness events dispatched to connections.
    pub readiness_write: Arc<Counter>,
}

impl NetInstruments {
    /// Resolves the handles from the global registry, or `None` while
    /// telemetry is off (so disabled builds never touch the registry).
    pub(crate) fn new() -> Option<Self> {
        if !offloadnn_telemetry::enabled() {
            return None;
        }
        let registry = offloadnn_telemetry::global();
        Some(Self {
            conns: registry.gauge("net.conns"),
            epoll_wakeups: registry.counter("net.epoll.wakeups"),
            readiness_read: registry.counter("net.readiness.read"),
            readiness_write: registry.counter("net.readiness.write"),
        })
    }
}

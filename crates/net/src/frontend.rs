//! Frontend selection: one enum over the threaded and reactor servers.
//!
//! The two frontends are semantically interchangeable (same protocol,
//! same backpressure, drain and reshard behaviour — see the parity notes
//! in [`crate::async_server`]); [`AnyServer`] lets tests, the load
//! generator and the benches run the identical workload against either
//! one, selected by a [`Frontend`] value parsed from e.g. a CLI flag.
//!
//! Both frontends (and therefore [`AnyServer`]) are generic over the
//! [`Backend`] they serve, defaulting to the in-process
//! [`offloadnn_serve::Service`]; [`AnyServer::start_with_backend`] puts
//! any other backend — e.g. an `offloadnn-gateway` cluster tier — behind
//! the same switch.

use crate::async_server::{AsyncServer, ReactorConfig};
use crate::backend::Backend;
use crate::error::NetError;
use crate::server::{NetConfig, NetServer};
use offloadnn_core::instance::DotInstance;
use offloadnn_serve::{DrainReport, Service, ServiceConfig};
use std::net::{SocketAddr, ToSocketAddrs};

/// Which TCP frontend serves the connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Frontend {
    /// Thread-per-connection ([`NetServer`]): reader + writer thread per
    /// client, the right default up to a few hundred connections.
    #[default]
    Threads,
    /// Readiness-driven ([`AsyncServer`]): a fixed epoll event-loop pool
    /// multiplexing every connection, for large client fleets.
    Reactor,
}

impl std::str::FromStr for Frontend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threads" => Ok(Self::Threads),
            "reactor" => Ok(Self::Reactor),
            other => Err(format!("unknown frontend '{other}' (expected 'threads' or 'reactor')")),
        }
    }
}

impl std::fmt::Display for Frontend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Threads => "threads",
            Self::Reactor => "reactor",
        })
    }
}

/// A running frontend of either flavour, with the shared server surface.
pub enum AnyServer<B: Backend = Service> {
    /// A thread-per-connection server.
    Threads(NetServer<B>),
    /// A reactor (epoll) server.
    Reactor(AsyncServer<B>),
}

impl<B: Backend> std::fmt::Debug for AnyServer<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Threads(s) => f.debug_tuple("Threads").field(s).finish(),
            Self::Reactor(s) => f.debug_tuple("Reactor").field(s).finish(),
        }
    }
}

impl AnyServer<Service> {
    /// Starts the selected frontend (the reactor one with
    /// [`ReactorConfig::default`]; use [`AnyServer::start_reactor`] to
    /// tune it).
    ///
    /// # Errors
    ///
    /// Whatever the underlying `start` reports.
    pub fn start(
        frontend: Frontend,
        addr: impl ToSocketAddrs,
        net: NetConfig,
        service_config: ServiceConfig,
        template: &DotInstance,
    ) -> Result<Self, NetError> {
        match frontend {
            Frontend::Threads => NetServer::start(addr, net, service_config, template).map(Self::Threads),
            Frontend::Reactor => {
                AsyncServer::start(addr, net, ReactorConfig::default(), service_config, template)
                    .map(Self::Reactor)
            }
        }
    }

    /// Starts a reactor frontend with explicit reactor tuning.
    ///
    /// # Errors
    ///
    /// Whatever [`AsyncServer::start`] reports.
    pub fn start_reactor(
        addr: impl ToSocketAddrs,
        net: NetConfig,
        reactor: ReactorConfig,
        service_config: ServiceConfig,
        template: &DotInstance,
    ) -> Result<Self, NetError> {
        AsyncServer::start(addr, net, reactor, service_config, template).map(Self::Reactor)
    }
}

impl<B: Backend> AnyServer<B> {
    /// Starts the selected frontend over an already-running backend (the
    /// reactor one with [`ReactorConfig::default`]).
    ///
    /// # Errors
    ///
    /// Whatever the underlying `start_with_backend` reports.
    pub fn start_with_backend(
        frontend: Frontend,
        addr: impl ToSocketAddrs,
        net: NetConfig,
        backend: B,
    ) -> Result<Self, NetError> {
        match frontend {
            Frontend::Threads => NetServer::start_with_backend(addr, net, backend).map(Self::Threads),
            Frontend::Reactor => {
                AsyncServer::start_with_backend(addr, net, ReactorConfig::default(), backend)
                    .map(Self::Reactor)
            }
        }
    }

    /// Which frontend this is.
    pub fn frontend(&self) -> Frontend {
        match self {
            Self::Threads(_) => Frontend::Threads,
            Self::Reactor(_) => Frontend::Reactor,
        }
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        match self {
            Self::Threads(s) => s.local_addr(),
            Self::Reactor(s) => s.local_addr(),
        }
    }

    /// Point-in-time metrics of the underlying backend.
    pub fn metrics(&self) -> offloadnn_serve::MetricsSnapshot {
        match self {
            Self::Threads(s) => s.metrics(),
            Self::Reactor(s) => s.metrics(),
        }
    }

    /// Whether a drain has begun.
    pub fn is_draining(&self) -> bool {
        match self {
            Self::Threads(s) => s.is_draining(),
            Self::Reactor(s) => s.is_draining(),
        }
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        match self {
            Self::Threads(s) => s.active_connections(),
            Self::Reactor(s) => s.active_connections(),
        }
    }

    /// Reshapes the underlying backend at runtime.
    ///
    /// # Errors
    ///
    /// Propagates [`Backend::scale_to`] errors.
    pub fn scale_to(
        &self,
        shards: usize,
    ) -> Result<offloadnn_serve::ReshardReport, offloadnn_serve::ServeError> {
        match self {
            Self::Threads(s) => s.scale_to(shards),
            Self::Reactor(s) => s.scale_to(shards),
        }
    }

    /// Registers this node with a gateway's membership engine and arms
    /// a graceful leave for drain/shutdown. See
    /// [`NetServer::announce_to`].
    ///
    /// # Errors
    ///
    /// Transport errors when the gateway cannot be reached or does not
    /// answer; the announce can simply be retried.
    pub fn announce_to(
        &self,
        gateway: SocketAddr,
    ) -> Result<crate::codec::MembershipResponse, crate::NetError> {
        match self {
            Self::Threads(s) => s.announce_to(gateway),
            Self::Reactor(s) => s.announce_to(gateway),
        }
    }

    /// [`AnyServer::announce_to`] with an explicit incarnation stamp.
    ///
    /// # Errors
    ///
    /// As [`AnyServer::announce_to`].
    pub fn announce_to_as(
        &self,
        gateway: SocketAddr,
        incarnation: u64,
    ) -> Result<crate::codec::MembershipResponse, crate::NetError> {
        match self {
            Self::Threads(s) => s.announce_to_as(gateway, incarnation),
            Self::Reactor(s) => s.announce_to_as(gateway, incarnation),
        }
    }

    /// Gracefully stops the frontend and drains the backend.
    pub fn shutdown(self) -> DrainReport {
        match self {
            Self::Threads(s) => s.shutdown(),
            Self::Reactor(s) => s.shutdown(),
        }
    }
}

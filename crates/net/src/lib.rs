//! # offloadnn-net — wire protocol and TCP frontend for the admission service
//!
//! [`offloadnn_serve::Service`] is an in-process runtime: nothing outside
//! its address space can submit a DOT admission request. This crate puts
//! it on the network — std-only, no external runtime — in three layers:
//!
//! * **Codec** ([`codec`]) — a versioned, length-prefixed binary frame
//!   format (`magic + version + type + length + payload + FNV-1a/32
//!   checksum`) carrying Submit / Depart / Snapshot / Drain requests and
//!   Outcome / Metrics / Error responses. Decoding is streaming and
//!   never panics on malformed input: truncation, bad magic, version
//!   skew, hostile length prefixes and corrupted checksums all surface
//!   as typed [`DecodeError`]s.
//! * **Server** — two interchangeable TCP frontends behind the
//!   [`Frontend`] switch (or directly), with identical wire behaviour:
//!   the threaded [`server::NetServer`] (one acceptor, a reader +
//!   writer thread per connection) and the epoll-based
//!   [`async_server::AsyncServer`] (a fixed pool of event loops built
//!   on `offloadnn-reactor`, multiplexing hundreds of connections onto
//!   a handful of threads). Both enforce a bounded per-connection
//!   in-flight window (backpressure propagates through the TCP receive
//!   buffer, not server memory), a connection-count limit, capped
//!   backoff on accept errors, and graceful drain that flushes every
//!   in-flight verdict to its client before closing.
//! * **Client** ([`client`]) — a pipelining client library with
//!   per-request deadline propagation (the client's budget travels in
//!   the frame; the server enforces the *tighter* of it and its own
//!   admission deadline) and reconnect with capped exponential backoff,
//!   plus the `net_loadgen` binary driving a loopback server.
//!
//! Hot paths record through [`offloadnn_telemetry`]: `net.encode` /
//! `net.decode` / `net.rtt` span histograms, per-frame-type `net.tx.*` /
//! `net.rx.*` counters, the `net.conns` gauge, reactor loop counters
//! (`net.epoll.wakeups`, `net.readiness.{read,write}`), and connection
//! lifecycle events.
//!
//! ```no_run
//! use offloadnn_core::scenario::small_scenario;
//! use offloadnn_net::{Client, ClientConfig, NetConfig, NetServer};
//! use offloadnn_serve::ServiceConfig;
//! use std::time::Duration;
//!
//! let scenario = small_scenario(5);
//! let server = NetServer::start(
//!     ("127.0.0.1", 0),
//!     NetConfig::default(),
//!     ServiceConfig::default(),
//!     &scenario.instance,
//! )
//! .unwrap();
//!
//! let client = Client::connect(server.local_addr(), ClientConfig::default()).unwrap();
//! let task = scenario.instance.tasks[0].clone();
//! let options = scenario.instance.options[0].clone();
//! let pending = client.submit(task, options, Some(Duration::from_millis(250))).unwrap();
//! let outcome = pending.wait().unwrap();
//! println!("verdict: {outcome:?}");
//! let report = server.shutdown();
//! assert!(report.metrics.is_conserved());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod async_server;
pub mod backend;
mod backoff;
pub mod client;
pub mod codec;
pub mod error;
pub mod frontend;
mod instruments;
pub mod server;
pub mod wire;

pub use async_server::{AsyncServer, ReactorConfig};
pub use backend::{Backend, ForwardInfo, MembershipAck, PeerDigest, PendingOutcome};
pub use client::{Client, ClientConfig, ClientConfigBuilder, PendingVerdict};
pub use codec::{
    decode, decode_capped, decode_exact, encode, ErrorCode, ForwardRequest, Frame, MemberInfo, MemberState,
    MembershipDecision, PeerHelloRequest, PeerLoadResponse, MAGIC, MAX_PAYLOAD, VERSION,
};
pub use error::{DecodeError, NetError};
pub use frontend::{AnyServer, Frontend};
pub use server::{NetConfig, NetServer};

//! The service surface a TCP frontend serves.
//!
//! Both frontends ([`crate::server::NetServer`] and
//! [`crate::async_server::AsyncServer`]) were written against
//! [`offloadnn_serve::Service`] directly. [`Backend`] extracts the exact
//! coupling surface they used — submit, depart, metrics, drain fencing,
//! scale and final drain — so the *same* frontends (and the
//! [`crate::Frontend`] switch over them) can also serve any other
//! admission-shaped runtime, e.g. a cluster gateway that fans submits
//! out to a fleet of serve nodes. `Service` implements the trait with
//! zero behavioural change; the frontends default their type parameter
//! to it, so existing call sites compile untouched.
//!
//! ## Deadline ownership
//!
//! The wire protocol ships a Submit's deadline budget as
//! `deadline_us == 0` for "no client deadline". The frontends used to
//! translate that into [`offloadnn_serve::ServiceConfig::admission_deadline`]
//! themselves; with multiple backends the *default* budget is backend
//! policy, so [`Backend::submit`] takes `Option<Duration>` and each
//! implementation applies its own default for `None`. `Service` keeps
//! the exact former behaviour: `None` means its configured admission
//! deadline, and an explicit budget is clamped to never exceed it.

use offloadnn_core::instance::PathOption;
use offloadnn_core::task::{Task, TaskId};
use offloadnn_serve::{
    DrainReport, MetricsSnapshot, Outcome, ReshardReport, ServeError, Service, SubmitError, Ticket,
};
use std::time::Duration;

/// A handle to one in-flight submission, redeemable for its verdict by
/// the frontend's writer (threaded) or completion (reactor) thread.
///
/// `None` from [`PendingOutcome::wait`] means the backend lost the
/// request without resolving it (e.g. a chaos-killed shard worker); the
/// frontend answers the client with an `Internal` error frame.
pub trait PendingOutcome: Send + 'static {
    /// Returns the verdict if it is already available, without blocking.
    fn try_wait(&self) -> Option<Outcome>;

    /// Blocks until the verdict arrives (or the backend gives up).
    fn wait(&self) -> Option<Outcome>;
}

impl PendingOutcome for Ticket {
    fn try_wait(&self) -> Option<Outcome> {
        Ticket::try_wait(self)
    }

    fn wait(&self) -> Option<Outcome> {
        Ticket::wait(self)
    }
}

/// What a TCP frontend needs from the runtime it fronts.
///
/// The methods mirror the wire protocol one-to-one: Submit / Depart /
/// Snapshot / Drain / Scale frames each dispatch to exactly one of
/// them. Implementations must be callable from many connection threads
/// concurrently (`Sync`), and [`Backend::drain`] is called exactly once
/// after every connection has flushed.
pub trait Backend: Send + Sync + Sized + 'static {
    /// The in-flight-submission handle this backend issues.
    type Pending: PendingOutcome;

    /// Submits an admission request. `budget` is the client's deadline
    /// budget (`None` = the backend's policy default); the backend may
    /// tighten but never extend its own policy with it.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] for requests refused at ingress (draining, no
    /// candidate options); these become error frames, not verdicts.
    fn submit(
        &self,
        task: Task,
        options: Vec<PathOption>,
        budget: Option<Duration>,
    ) -> Result<Self::Pending, SubmitError>;

    /// Releases the capacity of an admitted task (fire-and-forget).
    fn depart(&self, task: TaskId);

    /// Point-in-time metrics.
    fn metrics(&self) -> MetricsSnapshot;

    /// Fences the ingress: subsequent submits fail with
    /// [`SubmitError::Draining`] while in-flight requests still resolve.
    fn begin_drain(&self);

    /// Whether a drain has begun.
    fn is_draining(&self) -> bool;

    /// Reshapes the backend to `shards` workers at runtime.
    ///
    /// # Errors
    ///
    /// [`ServeError`] when the reshape is refused (zero shards,
    /// draining, no healthy capacity).
    fn scale_to(&self, shards: usize) -> Result<ReshardReport, ServeError>;

    /// Drains outstanding work and returns the final report. The
    /// frontends call this once, after the last connection closed.
    fn drain(self) -> DrainReport;
}

impl Backend for Service {
    type Pending = Ticket;

    fn submit(
        &self,
        task: Task,
        options: Vec<PathOption>,
        budget: Option<Duration>,
    ) -> Result<Ticket, SubmitError> {
        match budget {
            // submit_with_deadline clamps to the policy deadline.
            Some(budget) => self.submit_with_deadline(task, options, budget),
            None => Service::submit(self, task, options),
        }
    }

    fn depart(&self, task: TaskId) {
        Service::depart(self, task);
    }

    fn metrics(&self) -> MetricsSnapshot {
        Service::metrics(self)
    }

    fn begin_drain(&self) {
        Service::begin_drain(self);
    }

    fn is_draining(&self) -> bool {
        Service::is_draining(self)
    }

    fn scale_to(&self, shards: usize) -> Result<ReshardReport, ServeError> {
        Service::scale_to(self, shards)
    }

    fn drain(self) -> DrainReport {
        Service::drain(self)
    }
}

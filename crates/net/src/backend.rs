//! The service surface a TCP frontend serves.
//!
//! Both frontends ([`crate::server::NetServer`] and
//! [`crate::async_server::AsyncServer`]) were written against
//! [`offloadnn_serve::Service`] directly. [`Backend`] extracts the exact
//! coupling surface they used — submit, depart, metrics, drain fencing,
//! scale and final drain — so the *same* frontends (and the
//! [`crate::Frontend`] switch over them) can also serve any other
//! admission-shaped runtime, e.g. a cluster gateway that fans submits
//! out to a fleet of serve nodes. `Service` implements the trait with
//! zero behavioural change; the frontends default their type parameter
//! to it, so existing call sites compile untouched.
//!
//! ## Deadline ownership
//!
//! The wire protocol ships a Submit's deadline budget as
//! `deadline_us == 0` for "no client deadline". The frontends used to
//! translate that into [`offloadnn_serve::ServiceConfig::admission_deadline`]
//! themselves; with multiple backends the *default* budget is backend
//! policy, so [`Backend::submit`] takes `Option<Duration>` and each
//! implementation applies its own default for `None`. `Service` keeps
//! the exact former behaviour: `None` means its configured admission
//! deadline, and an explicit budget is clamped to never exceed it.

use crate::codec::{MemberInfo, MembershipDecision};
use offloadnn_core::instance::PathOption;
use offloadnn_core::task::{Task, TaskId};
use offloadnn_serve::{
    DrainReport, MetricsSnapshot, Outcome, ReshardReport, ServeError, Service, SubmitError, Ticket,
};
use std::net::SocketAddr;
use std::time::Duration;

/// The answer to a membership request ([`Backend::announce`] /
/// [`Backend::leave`]): the decision plus the backend's cluster view,
/// exactly what travels back in a [`crate::Frame::Membership`] frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipAck {
    /// How the request was judged.
    pub decision: MembershipDecision,
    /// The cluster after applying the request (empty when the backend
    /// manages no membership).
    pub members: Vec<MemberInfo>,
}

impl MembershipAck {
    /// The ack of a backend that manages no cluster membership.
    pub fn unsupported() -> Self {
        MembershipAck { decision: MembershipDecision::Unsupported, members: Vec::new() }
    }
}

/// A backend's answer to a peer gateway's load-digest request
/// ([`Backend::peer_load`]): what travels back in a
/// [`crate::Frame::PeerLoad`] frame, minus the correlation id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeerDigest {
    /// Routable (healthy) nodes behind this backend.
    pub healthy_nodes: u32,
    /// Aggregate remaining admission budget across those nodes; higher
    /// is emptier.
    pub remaining_budget: f64,
    /// p50 of the cluster's solver round time, in milliseconds.
    pub round_ms_p50: f64,
    /// The backend's cluster epoch (membership version). A change tells
    /// peers to drop plans they cached against this cluster.
    pub epoch: u64,
}

/// The federation metadata riding on a [`crate::Frame::Forward`]:
/// everything beyond an ordinary submit that the receiving backend
/// needs for loop-free re-forwarding and peer-scoped plan caching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForwardInfo {
    /// The gateway where the task first arrived.
    pub origin: String,
    /// Every gateway that has already held this task, origin included.
    pub tried: Vec<String>,
    /// Remaining hop budget (0 = the receiver must decide locally).
    pub hops: u8,
}

/// A handle to one in-flight submission, redeemable for its verdict by
/// the frontend's writer (threaded) or completion (reactor) thread.
///
/// `None` from [`PendingOutcome::wait`] means the backend lost the
/// request without resolving it (e.g. a chaos-killed shard worker); the
/// frontend answers the client with an `Internal` error frame.
pub trait PendingOutcome: Send + 'static {
    /// Returns the verdict if it is already available, without blocking.
    fn try_wait(&self) -> Option<Outcome>;

    /// Blocks until the verdict arrives (or the backend gives up).
    fn wait(&self) -> Option<Outcome>;
}

impl PendingOutcome for Ticket {
    fn try_wait(&self) -> Option<Outcome> {
        Ticket::try_wait(self)
    }

    fn wait(&self) -> Option<Outcome> {
        Ticket::wait(self)
    }
}

/// What a TCP frontend needs from the runtime it fronts.
///
/// The methods mirror the wire protocol one-to-one: Submit / Depart /
/// Snapshot / Drain / Scale frames each dispatch to exactly one of
/// them. Implementations must be callable from many connection threads
/// concurrently (`Sync`), and [`Backend::drain`] is called exactly once
/// after every connection has flushed.
pub trait Backend: Send + Sync + Sized + 'static {
    /// The in-flight-submission handle this backend issues.
    type Pending: PendingOutcome;

    /// Submits an admission request. `budget` is the client's deadline
    /// budget (`None` = the backend's policy default); the backend may
    /// tighten but never extend its own policy with it.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] for requests refused at ingress (draining, no
    /// candidate options); these become error frames, not verdicts.
    fn submit(
        &self,
        task: Task,
        options: Vec<PathOption>,
        budget: Option<Duration>,
    ) -> Result<Self::Pending, SubmitError>;

    /// Releases the capacity of an admitted task (fire-and-forget).
    fn depart(&self, task: TaskId);

    /// Point-in-time metrics.
    fn metrics(&self) -> MetricsSnapshot;

    /// Fences the ingress: subsequent submits fail with
    /// [`SubmitError::Draining`] while in-flight requests still resolve.
    fn begin_drain(&self);

    /// Whether a drain has begun.
    fn is_draining(&self) -> bool;

    /// Reshapes the backend to `shards` workers at runtime.
    ///
    /// # Errors
    ///
    /// [`ServeError`] when the reshape is refused (zero shards,
    /// draining, no healthy capacity).
    fn scale_to(&self, shards: usize) -> Result<ReshardReport, ServeError>;

    /// A node registering itself (protocol v3 [`crate::Frame::Announce`]).
    /// Backends that manage no cluster membership — a plain serve node —
    /// keep the default, which answers `Unsupported`.
    fn announce(&self, addr: SocketAddr, incarnation: u64) -> MembershipAck {
        let _ = (addr, incarnation);
        MembershipAck::unsupported()
    }

    /// A node deregistering ahead of a graceful drain (protocol v3
    /// [`crate::Frame::Leave`]). Same default as [`Backend::announce`].
    fn leave(&self, addr: SocketAddr, incarnation: u64) -> MembershipAck {
        let _ = (addr, incarnation);
        MembershipAck::unsupported()
    }

    /// An overflow admission forwarded from a peer gateway (protocol v4
    /// [`crate::Frame::Forward`]). The default treats it as an ordinary
    /// submit: a backend that manages no federation ignores the hop and
    /// tried-set metadata and decides locally, which is exactly the
    /// hop-budget-exhausted behaviour a federated gateway also falls
    /// back to. `budget` is the *remaining* deadline carried over from
    /// the origin, never the origin's policy default.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] for requests refused at ingress, exactly as
    /// [`Backend::submit`].
    fn forward(
        &self,
        task: Task,
        options: Vec<PathOption>,
        budget: Option<Duration>,
        info: ForwardInfo,
    ) -> Result<Self::Pending, SubmitError> {
        let _ = info;
        self.submit(task, options, budget)
    }

    /// A peer gateway asking for this backend's load digest (protocol
    /// v4 [`crate::Frame::PeerHello`]). `None` — the default — means the
    /// backend is not a federation member (e.g. a plain serve node was
    /// addressed); the frontend answers an error frame and the asking
    /// peer marks the address unusable as a forwarding target.
    fn peer_load(&self, peer_addr: &str, peer_incarnation: u64) -> Option<PeerDigest> {
        let _ = (peer_addr, peer_incarnation);
        None
    }

    /// Registers a hook to run when this backend's drain begins (either
    /// fence direction: [`Backend::begin_drain`] or [`Backend::drain`]).
    /// Returns `false` if the backend does not support drain hooks — the
    /// caller must then arrange its own notification. If the drain has
    /// already begun, a supporting backend runs the hook immediately.
    fn on_drain(&self, hook: Box<dyn FnOnce() + Send>) -> bool {
        let _ = hook;
        false
    }

    /// Drains outstanding work and returns the final report. The
    /// frontends call this once, after the last connection closed.
    fn drain(self) -> DrainReport;
}

/// A pending gateway deregistration, armed by a frontend's
/// `announce_to` and fired at most once — on drain-hook, shutdown, or
/// whichever comes first. Firing dials the gateway fail-fast and sends
/// a [`crate::Frame::Leave`]; errors are swallowed (a gateway that
/// cannot be reached will notice the departure through its health
/// probes, exactly as a crash-leave).
#[derive(Debug)]
pub struct LeaveNotice {
    gateway: SocketAddr,
    addr: String,
    incarnation: u64,
    config: crate::client::ClientConfig,
    timeout: Duration,
    fired: std::sync::atomic::AtomicBool,
}

impl LeaveNotice {
    pub(crate) fn new(
        gateway: SocketAddr,
        addr: String,
        incarnation: u64,
        config: crate::client::ClientConfig,
        timeout: Duration,
    ) -> Self {
        Self { gateway, addr, incarnation, config, timeout, fired: std::sync::atomic::AtomicBool::new(false) }
    }

    /// Sends the leave, best-effort, exactly once across every caller.
    pub fn fire(&self) {
        if self.fired.swap(true, std::sync::atomic::Ordering::AcqRel) {
            return;
        }
        if let Ok(client) = crate::client::Client::connect(self.gateway, self.config) {
            let _ = client.leave(&self.addr, self.incarnation, self.timeout);
        }
    }
}

/// How long a frontend waits for the gateway's answer to an announce or
/// leave before giving up (best-effort either way).
pub(crate) const MEMBERSHIP_RPC_TIMEOUT: Duration = Duration::from_secs(2);

/// The fail-fast dialing profile for membership traffic: a gateway that
/// cannot be reached promptly is treated as unreachable, not retried
/// into — registration is re-attemptable and deregistration is
/// best-effort.
pub(crate) fn membership_client_config() -> crate::client::ClientConfig {
    crate::client::ClientConfig {
        connect_attempts: 1,
        connect_timeout: Duration::from_millis(500),
        ..crate::client::ClientConfig::default()
    }
}

/// Shared frontend dispatch for the membership frames: parses the
/// address, consults the backend, and builds the reply frame. An
/// unparseable address answers a `Malformed` error frame (the
/// connection stays open — the envelope itself was valid).
pub(crate) fn membership_frame<B: Backend>(
    backend: &B,
    request_id: u64,
    addr: &str,
    incarnation: u64,
    is_leave: bool,
) -> crate::Frame {
    let parsed: Result<SocketAddr, _> = addr.parse();
    match parsed {
        Ok(sock) => {
            let ack =
                if is_leave { backend.leave(sock, incarnation) } else { backend.announce(sock, incarnation) };
            crate::Frame::Membership(crate::codec::MembershipResponse {
                request_id,
                decision: ack.decision,
                members: ack.members,
            })
        }
        Err(_) => crate::Frame::Error(crate::codec::ErrorResponse {
            request_id,
            code: crate::ErrorCode::Malformed,
            message: format!("unparseable member address {addr:?}"),
        }),
    }
}

impl Backend for Service {
    type Pending = Ticket;

    fn submit(
        &self,
        task: Task,
        options: Vec<PathOption>,
        budget: Option<Duration>,
    ) -> Result<Ticket, SubmitError> {
        match budget {
            // submit_with_deadline clamps to the policy deadline.
            Some(budget) => self.submit_with_deadline(task, options, budget),
            None => Service::submit(self, task, options),
        }
    }

    fn depart(&self, task: TaskId) {
        Service::depart(self, task);
    }

    fn metrics(&self) -> MetricsSnapshot {
        Service::metrics(self)
    }

    fn begin_drain(&self) {
        Service::begin_drain(self);
    }

    fn is_draining(&self) -> bool {
        Service::is_draining(self)
    }

    fn scale_to(&self, shards: usize) -> Result<ReshardReport, ServeError> {
        Service::scale_to(self, shards)
    }

    fn on_drain(&self, hook: Box<dyn FnOnce() + Send>) -> bool {
        Service::on_drain(self, hook);
        true
    }

    fn drain(self) -> DrainReport {
        Service::drain(self)
    }
}

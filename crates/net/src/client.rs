//! The client library: a pipelining connection to a [`crate::NetServer`]
//! with per-request deadline propagation and reconnect with capped
//! exponential backoff.
//!
//! ## Pipelining
//!
//! [`Client::submit`] writes the request and returns a
//! [`PendingVerdict`] immediately; any number of requests may be in
//! flight at once. A background reader thread demultiplexes responses by
//! correlation id, so verdicts can be redeemed in any order. The server
//! bounds each connection's in-flight window — a client pipelining past
//! it is simply not read until verdicts flush, and the backpressure
//! reaches [`Client::submit`] through the blocked socket write.
//!
//! ## Deadline propagation
//!
//! The optional per-submit deadline travels in the frame as a budget in
//! microseconds. The server applies the *tighter* of that budget and its
//! own policy deadline ([`offloadnn_serve::ServiceConfig::admission_deadline`]),
//! so a client can shrink its admission window but never extend it.
//!
//! ## Reconnect
//!
//! Dialing (initial connect and any redial after the connection dies)
//! retries with capped exponential backoff *with decorrelated jitter*:
//! each pause is drawn uniformly from `[backoff_base, min(backoff_cap,
//! 3 × previous)]`, for at most [`ClientConfig::connect_attempts`]
//! attempts. The jitter matters at fleet scale — a deterministic
//! doubling schedule makes every client of a dead server sleep the same
//! amounts from the same trigger and stampede it in lockstep the moment
//! it recovers. Requests that were in flight when a connection died
//! resolve as [`NetError::Disconnected`] — a submit is not idempotent,
//! so the client never silently replays one; the *next* request dials
//! afresh.

use crate::backoff::{entropy_seed, ReconnectBackoff};
use crate::codec::{
    self, AnnounceRequest, DepartRequest, DrainRequest, ForwardRequest, Frame, LeaveRequest,
    MembershipResponse, PeerHelloRequest, PeerLoadResponse, ScaleRequest, ScaleResponse, SnapshotRequest,
    SubmitRequest,
};
use crate::error::NetError;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use offloadnn_core::instance::PathOption;
use offloadnn_core::task::{Task, TaskId};
use offloadnn_serve::{Admitter, MetricsSnapshot, Outcome, SubmitError, VerdictError};
use offloadnn_telemetry::{event, Histogram, Severity};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`Client`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Per-attempt TCP connect timeout.
    pub connect_timeout: Duration,
    /// Dial attempts (initial connect or redial) before giving up with
    /// [`NetError::Disconnected`].
    pub connect_attempts: u32,
    /// Lower bound of every reconnect pause (and the bound the jittered
    /// envelope grows from).
    pub backoff_base: Duration,
    /// Backoff ceiling — every jittered pause is clamped here.
    pub backoff_cap: Duration,
    /// Socket read timeout — the cadence at which the reader thread
    /// rechecks the close flag while idle.
    pub read_timeout: Duration,
    /// Socket write timeout; a server that cannot absorb a request this
    /// long (window full and never draining it) fails the send.
    pub write_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(1),
            connect_attempts: 5,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(1),
            read_timeout: Duration::from_millis(50),
            write_timeout: Duration::from_secs(5),
        }
    }
}

impl ClientConfig {
    /// A builder starting from [`ClientConfig::default`]. Every setter
    /// keeps the remaining fields at their defaults, and
    /// [`ClientConfigBuilder::build`] validates the result, so an
    /// invalid combination is caught where it was written rather than
    /// at first dial.
    pub fn builder() -> ClientConfigBuilder {
        ClientConfigBuilder { config: Self::default() }
    }

    /// Validates every field.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), NetError> {
        if self.connect_timeout.is_zero() {
            return Err(NetError::InvalidConfig("connect_timeout must be > 0"));
        }
        if self.connect_attempts == 0 {
            return Err(NetError::InvalidConfig("connect_attempts must be >= 1"));
        }
        if self.backoff_base.is_zero() {
            return Err(NetError::InvalidConfig("backoff_base must be > 0"));
        }
        if self.backoff_cap < self.backoff_base {
            return Err(NetError::InvalidConfig("backoff_cap must be >= backoff_base"));
        }
        if self.read_timeout.is_zero() {
            return Err(NetError::InvalidConfig("read_timeout must be > 0"));
        }
        if self.write_timeout.is_zero() {
            return Err(NetError::InvalidConfig("write_timeout must be > 0"));
        }
        Ok(())
    }
}

/// Builder for [`ClientConfig`] — see [`ClientConfig::builder`].
#[derive(Debug, Clone)]
pub struct ClientConfigBuilder {
    config: ClientConfig,
}

impl ClientConfigBuilder {
    /// Sets the per-attempt TCP connect timeout.
    #[must_use]
    pub fn connect_timeout(mut self, timeout: Duration) -> Self {
        self.config.connect_timeout = timeout;
        self
    }

    /// Sets the number of dial attempts before giving up.
    #[must_use]
    pub fn connect_attempts(mut self, attempts: u32) -> Self {
        self.config.connect_attempts = attempts;
        self
    }

    /// Sets the reconnect backoff envelope (base and cap).
    #[must_use]
    pub fn backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.config.backoff_base = base;
        self.config.backoff_cap = cap;
        self
    }

    /// Sets the socket read timeout.
    #[must_use]
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.config.read_timeout = timeout;
        self
    }

    /// Sets the socket write timeout.
    #[must_use]
    pub fn write_timeout(mut self, timeout: Duration) -> Self {
        self.config.write_timeout = timeout;
        self
    }

    /// Validates and returns the finished config.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidConfig`] naming the offending field.
    pub fn build(self) -> Result<ClientConfig, NetError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// The round-trip latency histogram (`net.rtt` on the global telemetry
/// registry): submit write to verdict arrival.
fn rtt_histogram() -> &'static Arc<Histogram> {
    static RTT: OnceLock<Arc<Histogram>> = OnceLock::new();
    RTT.get_or_init(|| offloadnn_telemetry::global().phase("net.rtt"))
}

/// Responses owed on one connection incarnation, keyed by correlation
/// id. Owned jointly by the facade (inserts) and that incarnation's
/// reader thread (removes + delivers; clears on exit). Per-incarnation
/// so a reader that dies can only fail *its own* requests, never ones
/// registered after a redial.
type PendingMap = Arc<Mutex<HashMap<u64, Sender<Frame>>>>;

/// One live connection: write half, reader thread, and the requests in
/// flight on it.
struct Conn {
    stream: TcpStream,
    reader: JoinHandle<()>,
    /// Set by the reader when the connection dies (EOF, socket error,
    /// protocol error or a connection-level server error).
    dead: Arc<AtomicBool>,
    pending: PendingMap,
}

/// A connection to a [`crate::NetServer`]. Submissions pipeline: each
/// [`Client::submit`] returns a [`PendingVerdict`] redeemable in any
/// order, and a dead connection is redialed (with backoff) on the next
/// request. All methods take `&self` and are thread-safe; requests from
/// multiple threads share the one connection and its in-flight window.
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Mutex<Option<Conn>>,
    /// Tells the reader thread(s) to exit at their next timeout tick.
    closing: Arc<AtomicBool>,
    next_id: AtomicU64,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").field("addr", &self.addr).finish_non_exhaustive()
    }
}

/// Handle to one pipelined submit; redeem it with
/// [`PendingVerdict::wait`].
#[derive(Debug)]
pub struct PendingVerdict {
    rx: Receiver<Frame>,
    sent_at: Instant,
    /// Id of the submitted task.
    pub task: TaskId,
    /// Correlation id the response will carry.
    pub request_id: u64,
}

impl PendingVerdict {
    fn interpret_ref(&self, frame: Frame) -> Result<Outcome, NetError> {
        if offloadnn_telemetry::enabled() {
            rtt_histogram().record(self.sent_at.elapsed());
        }
        match frame {
            Frame::Outcome(r) => Ok(r.outcome),
            Frame::Error(e) => Err(NetError::Server(e)),
            other => Err(NetError::Disconnected(format!(
                "unexpected {} frame in place of a verdict",
                other.type_name()
            ))),
        }
    }

    /// Blocks until the verdict (or a server error) arrives.
    ///
    /// # Errors
    ///
    /// [`NetError::Server`] if the server answered with an error frame
    /// (e.g. it is draining), [`NetError::Disconnected`] if the
    /// connection died before the verdict arrived.
    pub fn wait(self) -> Result<Outcome, NetError> {
        let frame = self
            .rx
            .recv()
            .map_err(|_| NetError::Disconnected("connection died before the verdict".into()))?;
        self.interpret_ref(frame)
    }

    /// Like [`PendingVerdict::wait`] with a bound on the blocking time.
    ///
    /// # Errors
    ///
    /// As [`PendingVerdict::wait`], plus [`NetError::Disconnected`] on
    /// timeout (the verdict may still arrive later; the handle is
    /// consumed either way).
    pub fn wait_timeout(self, timeout: Duration) -> Result<Outcome, NetError> {
        let frame = self
            .rx
            .recv_timeout(timeout)
            .map_err(|_| NetError::Disconnected("no verdict within the timeout".into()))?;
        self.interpret_ref(frame)
    }

    /// Non-blocking, non-consuming check: `None` while the verdict is
    /// still in flight, `Some(...)` once it resolved. Racing two
    /// submissions (a hedged request) needs exactly this shape — the
    /// vendored channel has no `select`, so the racer alternates polls
    /// on both handles.
    ///
    /// Once `Some(...)` has been returned, the verdict is consumed and
    /// further polls report the connection as closed.
    pub fn poll(&self) -> Option<Result<Outcome, NetError>> {
        match self.rx.try_recv() {
            Ok(frame) => Some(self.interpret_ref(frame)),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => {
                Some(Err(NetError::Disconnected("connection died before the verdict".into())))
            }
        }
    }

    /// Like [`PendingVerdict::poll`] but blocks up to `timeout` for the
    /// verdict. `None` strictly means the timeout elapsed with the
    /// request still in flight.
    pub fn poll_wait(&self, timeout: Duration) -> Option<Result<Outcome, NetError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => Some(self.interpret_ref(frame)),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => {
                Some(Err(NetError::Disconnected("connection died before the verdict".into())))
            }
        }
    }
}

impl Client {
    /// Resolves `addr` and dials it (with the configured backoff
    /// schedule), returning a connected client.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidConfig`] for bad configuration,
    /// [`NetError::Io`] if `addr` does not resolve,
    /// [`NetError::Disconnected`] when every dial attempt failed.
    pub fn connect(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Self, NetError> {
        config.validate()?;
        let addr =
            addr.to_socket_addrs()?.next().ok_or(NetError::InvalidConfig("address resolved to nothing"))?;
        let client = Self {
            addr,
            config,
            conn: Mutex::new(None),
            closing: Arc::new(AtomicBool::new(false)),
            next_id: AtomicU64::new(1),
        };
        // Fail fast on an unreachable server instead of on first use.
        let first = client.dial()?;
        *client.conn.lock().expect("conn lock") = Some(first);
        Ok(client)
    }

    /// The server address this client dials.
    pub fn server_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Dials with capped, decorrelated-jitter backoff and spawns the
    /// connection's reader thread.
    fn dial(&self) -> Result<Conn, NetError> {
        let mut backoff =
            ReconnectBackoff::new(self.config.backoff_base, self.config.backoff_cap, entropy_seed());
        let mut last: Option<std::io::Error> = None;
        for attempt in 0..self.config.connect_attempts {
            if attempt > 0 {
                std::thread::sleep(backoff.next_delay());
            }
            match TcpStream::connect_timeout(&self.addr, self.config.connect_timeout) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_write_timeout(Some(self.config.write_timeout));
                    let read_half = stream.try_clone().map_err(NetError::Io)?;
                    read_half.set_read_timeout(Some(self.config.read_timeout)).map_err(NetError::Io)?;
                    let dead = Arc::new(AtomicBool::new(false));
                    let pending: PendingMap = Arc::new(Mutex::new(HashMap::new()));
                    let reader = {
                        let pending = Arc::clone(&pending);
                        let dead = Arc::clone(&dead);
                        let closing = Arc::clone(&self.closing);
                        std::thread::Builder::new()
                            .name("net-client-reader".into())
                            .spawn(move || read_responses(read_half, &pending, &dead, &closing))
                            .map_err(NetError::Io)?
                    };
                    event!(
                        Severity::Info,
                        "net.client",
                        "connected to {} (attempt {})",
                        self.addr,
                        attempt + 1
                    );
                    return Ok(Conn { stream, reader, dead, pending });
                }
                Err(e) => {
                    event!(
                        Severity::Warn,
                        "net.client",
                        "dial {} failed (attempt {}): {e}",
                        self.addr,
                        attempt + 1
                    );
                    last = Some(e);
                }
            }
        }
        Err(NetError::Disconnected(format!(
            "gave up dialing {} after {} attempt(s): {}",
            self.addr,
            self.config.connect_attempts,
            last.map_or_else(|| "no attempt made".to_owned(), |e| e.to_string()),
        )))
    }

    /// Writes one encoded frame on the live connection — redialing first
    /// if the previous connection died — and, when the frame expects a
    /// response, registers its correlation id on that same incarnation's
    /// pending map (atomically with the write, so a reader death can
    /// never orphan the slot on the wrong incarnation).
    fn send(
        &self,
        request_id: u64,
        bytes: &[u8],
        want_reply: bool,
    ) -> Result<Option<Receiver<Frame>>, NetError> {
        let mut guard = self.conn.lock().expect("conn lock");
        // Reap a dead connection before writing (its reader has already
        // failed the requests pending on that incarnation).
        if guard.as_ref().is_some_and(|c| c.dead.load(Ordering::Acquire)) {
            if let Some(old) = guard.take() {
                let _ = old.reader.join();
            }
        }
        if guard.is_none() {
            *guard = Some(self.dial()?);
        }
        let conn = guard.as_mut().expect("connection just established");
        let rx = if want_reply {
            let (tx, rx) = channel::bounded(1);
            conn.pending.lock().expect("pending lock").insert(request_id, tx);
            Some(rx)
        } else {
            None
        };
        match conn.stream.write_all(bytes) {
            Ok(()) => Ok(rx),
            Err(e) => {
                // The write failed mid-frame: the connection's framing
                // can no longer be trusted; tear it down. The reader's
                // exit fails every other request pending on it.
                conn.pending.lock().expect("pending lock").remove(&request_id);
                conn.dead.store(true, Ordering::Release);
                let _ = conn.stream.shutdown(Shutdown::Both);
                Err(NetError::Io(e))
            }
        }
    }

    /// Submits an admission request, pipelined: returns as soon as the
    /// frame is written. `deadline` is the admission budget shipped to
    /// the server (`None` = the server's policy deadline); the server
    /// enforces the tighter of the two.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] / [`NetError::Disconnected`] when the frame
    /// could not be written (after any redial attempts).
    pub fn submit(
        &self,
        task: Task,
        options: Vec<PathOption>,
        deadline: Option<Duration>,
    ) -> Result<PendingVerdict, NetError> {
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let task_id = task.id;
        let deadline_us = deadline.map_or(0, |d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX).max(1));
        let frame = Frame::Submit(SubmitRequest { request_id, deadline_us, task, options });
        let bytes = codec::encode(&frame);
        let sent_at = Instant::now();
        let rx = self.send(request_id, &bytes, true)?.expect("reply slot requested");
        Ok(PendingVerdict { rx, sent_at, task: task_id, request_id })
    }

    /// Forwards an overflow admission to a peer gateway (protocol v4).
    /// Pipelined exactly like [`Client::submit`] — the peer answers with
    /// an ordinary outcome frame. `remaining` is the deadline budget
    /// left on the origin gateway (`None` = the task never had one),
    /// `hops` the remaining forward budget, and `tried` every gateway
    /// that has already held the task (origin included).
    ///
    /// # Errors
    ///
    /// As [`Client::submit`].
    pub fn forward(
        &self,
        task: Task,
        options: Vec<PathOption>,
        remaining: Option<Duration>,
        hops: u8,
        origin: &str,
        tried: &[String],
    ) -> Result<PendingVerdict, NetError> {
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let task_id = task.id;
        let deadline_us = remaining.map_or(0, |d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX).max(1));
        let frame = Frame::Forward(ForwardRequest {
            request_id,
            deadline_us,
            hops,
            origin: origin.to_owned(),
            tried: tried.to_vec(),
            task,
            options,
        });
        let bytes = codec::encode(&frame);
        let sent_at = Instant::now();
        let rx = self.send(request_id, &bytes, true)?.expect("reply slot requested");
        Ok(PendingVerdict { rx, sent_at, task: task_id, request_id })
    }

    /// Asks a peer gateway for its load digest (protocol v4), blocking
    /// up to `timeout` — the shape the federation digest loop needs: a
    /// peer that cannot answer within the timeout counts as a missed
    /// digest instead of wedging the loop. `addr` / `incarnation`
    /// identify the *asking* gateway, so the peer can dial it back.
    ///
    /// # Errors
    ///
    /// Transport errors as for [`Client::submit`]; [`NetError::Server`]
    /// when the addressed backend is not a federation gateway;
    /// [`NetError::Disconnected`] when `timeout` elapses first.
    pub fn peer_hello(
        &self,
        addr: &str,
        incarnation: u64,
        timeout: Duration,
    ) -> Result<PeerLoadResponse, NetError> {
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = Frame::PeerHello(PeerHelloRequest { request_id, addr: addr.to_owned(), incarnation });
        let rx = self.send(request_id, &codec::encode(&frame), true)?.expect("reply slot requested");
        match rx.recv_timeout(timeout) {
            Ok(Frame::PeerLoad(d)) => Ok(d),
            Ok(Frame::Error(e)) => Err(NetError::Server(e)),
            Ok(other) => Err(NetError::Disconnected(format!(
                "unexpected {} frame in place of a load digest",
                other.type_name()
            ))),
            Err(RecvTimeoutError::Timeout) => {
                Err(NetError::Disconnected("no load digest within the timeout".into()))
            }
            Err(RecvTimeoutError::Disconnected) => {
                Err(NetError::Disconnected("connection died before the load digest arrived".into()))
            }
        }
    }

    /// Sends a departure notice for an admitted task. Fire-and-forget:
    /// the server releases the capacity and sends no response.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] / [`NetError::Disconnected`] when the frame
    /// could not be written.
    pub fn depart(&self, task: TaskId) -> Result<(), NetError> {
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = Frame::Depart(DepartRequest { request_id, task });
        self.send(request_id, &codec::encode(&frame), false).map(|_| ())
    }

    /// Fetches a point-in-time metrics snapshot from the server
    /// (blocking; pipelines fine behind in-flight submits).
    ///
    /// # Errors
    ///
    /// Transport errors as for [`Client::submit`];
    /// [`NetError::Disconnected`] if the connection dies first.
    pub fn snapshot(&self) -> Result<MetricsSnapshot, NetError> {
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = Frame::Snapshot(SnapshotRequest { request_id });
        let rx = self.send(request_id, &codec::encode(&frame), true)?.expect("reply slot requested");
        Self::wait_metrics(&rx).map(|(m, _)| m)
    }

    /// Like [`Client::snapshot`] with a bound on the blocking time — the
    /// shape a health prober needs: a node that cannot answer a metrics
    /// request within the timeout counts as a missed check instead of
    /// wedging the prober.
    ///
    /// # Errors
    ///
    /// As [`Client::snapshot`], plus [`NetError::Disconnected`] when the
    /// timeout elapses first (the response is discarded by the reader if
    /// it arrives later).
    pub fn snapshot_timeout(&self, timeout: Duration) -> Result<MetricsSnapshot, NetError> {
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = Frame::Snapshot(SnapshotRequest { request_id });
        let rx = self.send(request_id, &codec::encode(&frame), true)?.expect("reply slot requested");
        match rx.recv_timeout(timeout) {
            Ok(Frame::Metrics(m)) => Ok(m.metrics),
            Ok(Frame::Error(e)) => Err(NetError::Server(e)),
            Ok(other) => Err(NetError::Disconnected(format!(
                "unexpected {} frame in place of metrics",
                other.type_name()
            ))),
            Err(RecvTimeoutError::Timeout) => {
                Err(NetError::Disconnected("no metrics within the timeout".into()))
            }
            Err(RecvTimeoutError::Disconnected) => {
                Err(NetError::Disconnected("connection died before the metrics arrived".into()))
            }
        }
    }

    /// Asks the server to drain gracefully and blocks for the final
    /// metrics snapshot, which the server sends only after every verdict
    /// owed to this connection has been flushed.
    ///
    /// # Errors
    ///
    /// Transport errors as for [`Client::submit`].
    pub fn drain(&self) -> Result<MetricsSnapshot, NetError> {
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = Frame::Drain(DrainRequest { request_id });
        let rx = self.send(request_id, &codec::encode(&frame), true)?.expect("reply slot requested");
        Self::wait_metrics(&rx).map(|(m, _)| m)
    }

    /// Asks the server to reshape its shard fleet to `shards` workers
    /// and blocks for the [`ScaleResponse`]. Pipelines fine behind
    /// in-flight submits: traffic keeps flowing while the server
    /// reshards.
    ///
    /// # Errors
    ///
    /// [`NetError::Server`] with [`crate::codec::ErrorCode::InvalidScale`]
    /// if the server refused (zero shards, draining); transport errors as
    /// for [`Client::submit`].
    pub fn scale_to(&self, shards: u32) -> Result<ScaleResponse, NetError> {
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = Frame::Scale(ScaleRequest { request_id, shards });
        let rx = self.send(request_id, &codec::encode(&frame), true)?.expect("reply slot requested");
        match rx.recv() {
            Ok(Frame::Scaled(r)) => Ok(r),
            Ok(Frame::Error(e)) => Err(NetError::Server(e)),
            Ok(other) => Err(NetError::Disconnected(format!(
                "unexpected {} frame in place of a scale response",
                other.type_name()
            ))),
            Err(_) => Err(NetError::Disconnected("connection died before the scale response arrived".into())),
        }
    }

    /// Announces a serve node to a gateway: "`addr` is alive under
    /// `incarnation`, dial it". Blocks for the [`MembershipResponse`]
    /// (protocol v3). The caller is typically the node's own frontend
    /// ([`crate::server::NetServer::announce_to`]) rather than an
    /// admission client.
    ///
    /// # Errors
    ///
    /// Transport errors as for [`Client::submit`];
    /// [`NetError::Disconnected`] when `timeout` elapses first or the
    /// peer answers with something other than a membership frame.
    pub fn announce(
        &self,
        addr: &str,
        incarnation: u64,
        timeout: Duration,
    ) -> Result<MembershipResponse, NetError> {
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = Frame::Announce(AnnounceRequest { request_id, addr: addr.to_owned(), incarnation });
        let rx = self.send(request_id, &codec::encode(&frame), true)?.expect("reply slot requested");
        Self::wait_membership(&rx, timeout, "announce")
    }

    /// Deregisters a serve node from a gateway ahead of a graceful
    /// drain. Blocks for the [`MembershipResponse`], which the gateway
    /// sends once it has stopped routing new work to the node (protocol
    /// v3).
    ///
    /// # Errors
    ///
    /// As [`Client::announce`].
    pub fn leave(
        &self,
        addr: &str,
        incarnation: u64,
        timeout: Duration,
    ) -> Result<MembershipResponse, NetError> {
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = Frame::Leave(LeaveRequest { request_id, addr: addr.to_owned(), incarnation });
        let rx = self.send(request_id, &codec::encode(&frame), true)?.expect("reply slot requested");
        Self::wait_membership(&rx, timeout, "leave")
    }

    fn wait_membership(
        rx: &Receiver<Frame>,
        timeout: Duration,
        what: &str,
    ) -> Result<MembershipResponse, NetError> {
        match rx.recv_timeout(timeout) {
            Ok(Frame::Membership(m)) => Ok(m),
            Ok(Frame::Error(e)) => Err(NetError::Server(e)),
            Ok(other) => Err(NetError::Disconnected(format!(
                "unexpected {} frame in place of a {what} response",
                other.type_name()
            ))),
            Err(RecvTimeoutError::Timeout) => {
                Err(NetError::Disconnected(format!("no {what} response within the timeout")))
            }
            Err(RecvTimeoutError::Disconnected) => {
                Err(NetError::Disconnected(format!("connection died before the {what} response arrived")))
            }
        }
    }

    fn wait_metrics(rx: &Receiver<Frame>) -> Result<(MetricsSnapshot, bool), NetError> {
        match rx.recv() {
            Ok(Frame::Metrics(m)) => Ok((m.metrics, m.is_final)),
            Ok(Frame::Error(e)) => Err(NetError::Server(e)),
            Ok(other) => Err(NetError::Disconnected(format!(
                "unexpected {} frame in place of metrics",
                other.type_name()
            ))),
            Err(_) => Err(NetError::Disconnected("connection died before the metrics arrived".into())),
        }
    }

    /// Closes the connection and joins the reader thread. Pending
    /// verdicts resolve as [`NetError::Disconnected`]. Dropping the
    /// client does the same.
    pub fn close(self) {
        drop(self);
    }
}

/// Maps a tier-specific wire failure onto the unified
/// [`VerdictError`] vocabulary: typed server refusals stay
/// distinguishable from transport deaths, so the cross-tier drivers
/// keep their separate tallies (and the conservation cross-checks that
/// depend on them).
fn verdict_error(e: NetError) -> VerdictError {
    match e {
        NetError::Server(err) => VerdictError::Refused(err.message),
        other => VerdictError::Transport(other.to_string()),
    }
}

impl offloadnn_serve::VerdictHandle for PendingVerdict {
    fn poll(&self) -> Option<Result<Outcome, VerdictError>> {
        PendingVerdict::poll(self).map(|r| r.map_err(verdict_error))
    }

    fn wait(self: Box<Self>) -> Result<Outcome, VerdictError> {
        PendingVerdict::wait(*self).map_err(verdict_error)
    }

    fn wait_timeout(self: Box<Self>, timeout: Duration) -> Result<Outcome, VerdictError> {
        // poll_wait distinguishes "bound elapsed" from "connection
        // died", which the consuming wait_timeout folds together.
        match PendingVerdict::poll_wait(&self, timeout) {
            Some(r) => r.map_err(verdict_error),
            None => Err(VerdictError::TimedOut),
        }
    }
}

impl Admitter for Client {
    fn submit(
        &self,
        task: Task,
        options: Vec<PathOption>,
        deadline: Option<Duration>,
    ) -> Result<offloadnn_serve::PendingVerdict, SubmitError> {
        let task_id = task.id;
        match Client::submit(self, task, options, deadline) {
            Ok(pending) => Ok(offloadnn_serve::PendingVerdict::new(task_id, Box::new(pending))),
            // A submit that could not be written was never accepted
            // anywhere: the unified ingress refusal, not a lost verdict.
            Err(_) => Err(SubmitError::Unavailable),
        }
    }

    fn depart(&self, task: TaskId) {
        // Fire-and-forget on the trait: a transport error here is
        // indistinguishable from a client that crashed after admission,
        // which the server side already tolerates.
        let _ = Client::depart(self, task);
    }

    fn metrics(&self) -> Option<MetricsSnapshot> {
        self.snapshot().ok()
    }

    fn begin_drain(&self) {
        // The wire protocol's drain is a full fence + final snapshot;
        // discarding the snapshot leaves exactly the fence semantics
        // the trait asks for. Best-effort, as for depart.
        let _ = self.drain();
    }

    fn tier(&self) -> &'static str {
        "net"
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        self.closing.store(true, Ordering::Release);
        if let Some(conn) = self.conn.lock().expect("conn lock").take() {
            let _ = conn.stream.shutdown(Shutdown::Both);
            let _ = conn.reader.join();
        }
    }
}

/// The reader thread of one connection incarnation: decodes response
/// frames and routes each to its pending request by correlation id. On
/// exit (EOF, socket error, protocol error or client close), every
/// request still pending on this incarnation is failed by dropping its
/// sender.
fn read_responses(
    mut stream: TcpStream,
    pending: &PendingMap,
    dead: &Arc<AtomicBool>,
    closing: &Arc<AtomicBool>,
) {
    let mut buf: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut chunk = [0u8; 16 * 1024];
    'conn: loop {
        loop {
            match codec::decode(&buf) {
                Ok(Some((frame, consumed))) => {
                    buf.drain(..consumed);
                    let id = frame.request_id();
                    // A connection-level error (id 0) has no owner; the
                    // server closes the connection after sending it.
                    if id == 0 {
                        event!(Severity::Warn, "net.client", "connection-level server error: {frame:?}");
                        break 'conn;
                    }
                    let slot = pending.lock().expect("pending lock").remove(&id);
                    match slot {
                        Some(tx) => {
                            let _ = tx.send(frame);
                        }
                        None => {
                            event!(Severity::Warn, "net.client", "response for unknown request {id}");
                        }
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    event!(Severity::Warn, "net.client", "protocol error from server, closing: {e}");
                    break 'conn;
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => break 'conn,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut) => {
                if closing.load(Ordering::Acquire) {
                    break 'conn;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break 'conn,
        }
    }
    dead.store(true, Ordering::Release);
    let _ = stream.shutdown(Shutdown::Both);
    // Fail everything this incarnation still owes: dropping the senders
    // disconnects the receivers, surfacing NetError::Disconnected.
    pending.lock().expect("pending lock").clear();
}

//! The versioned, length-prefixed binary frame codec.
//!
//! ## Frame layout
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "ODNN"
//! 4       1     protocol version (1 through 4)
//! 5       1     frame type
//! 6       2     reserved (must be zero)
//! 8       4     payload length N, little-endian (<= MAX_PAYLOAD)
//! 12      N     payload (frame-type specific)
//! 12+N    4     FNV-1a/32 checksum over bytes [0, 12+N)
//! ```
//!
//! Requests ([`Frame::Submit`], [`Frame::Depart`], [`Frame::Snapshot`],
//! [`Frame::Drain`], [`Frame::Scale`], [`Frame::Announce`],
//! [`Frame::Leave`]) and responses ([`Frame::Outcome`],
//! [`Frame::Metrics`], [`Frame::Scaled`], [`Frame::Membership`],
//! [`Frame::Error`]) all start their payload with a `u64` correlation id
//! chosen by the client, so requests can be pipelined and responses
//! arrive in any order.
//!
//! ## Version history
//!
//! * **v1** — initial protocol.
//! * **v2** — adds the elastic-resharding frames [`Frame::Scale`] /
//!   [`Frame::Scaled`] and appends `reshards` / `migrated` /
//!   `generation` to the metrics payload. The decoder still accepts v1
//!   frames (the new metrics fields read as zero).
//! * **v3** — adds the cluster auto-discovery frames
//!   [`Frame::Announce`] / [`Frame::Leave`] / [`Frame::Membership`], by
//!   which serve nodes register with (and deregister from) a gateway.
//! * **v4** — adds the cross-gateway federation frames
//!   [`Frame::PeerHello`] / [`Frame::PeerLoad`] / [`Frame::Forward`]:
//!   gateways exchange periodic load digests and forward overflow
//!   admissions to the least-loaded peer, carrying the remaining
//!   deadline budget, a hop budget and the set of gateways already
//!   tried (loop freedom).
//!
//! Each frame is stamped with the *lowest* protocol version that can
//! express it (see [`frame_min_version`]): a Submit still travels as v1
//! and a Metrics frame as v2, so a peer built against an older revision
//! keeps decoding every frame type it knows. The decoder, for its part,
//! **skips** well-formed frames stamped with a version newer than its
//! cap — the envelope layout (magic / length / trailing checksum) is
//! fixed across versions, so an old peer can verify the checksum and
//! step over a frame type it cannot parse without desyncing the stream
//! ([`decode_capped`] pins this; a bad checksum on such a frame is still
//! fatal, since nothing else about it can be trusted).
//!
//! The decoder never panics on malformed input: truncation, bad magic,
//! version skew, unknown types, oversized length prefixes (outer and
//! inner), checksum corruption and bad enum tags all surface as typed
//! [`DecodeError`]s. [`decode`] is a *streaming* entry point — it returns
//! `Ok(None)` while a frame is still incomplete — while [`decode_exact`]
//! expects exactly one whole frame.

use crate::error::DecodeError;
use crate::wire::{fnv1a32, Reader, Writer};
use offloadnn_core::instance::PathOption;
use offloadnn_core::task::{QualityLevel, Task, TaskId};
use offloadnn_dnn::block::{BlockId, GroupId, ModelId};
use offloadnn_dnn::repository::DnnPath;
use offloadnn_dnn::{Config, PathConfig};
use offloadnn_radio::SnrDb;
use offloadnn_serve::metrics::HistogramSnapshot;
use offloadnn_serve::{MetricsSnapshot, Outcome, SubmitError, HISTOGRAM_BUCKETS};
use offloadnn_telemetry::{count, span};
use serde::{Deserialize, Serialize};

/// The four magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"ODNN";

/// The newest protocol revision this build understands. Individual
/// frames are emitted at their own minimum version (see
/// [`frame_min_version`]), never above this.
pub const VERSION: u8 = 4;

/// Oldest protocol revision this build still decodes.
pub const MIN_VERSION: u8 = 1;

/// Envelope bytes before the payload.
pub const HEADER_LEN: usize = 12;

/// Envelope bytes after the payload (the checksum).
pub const TRAILER_LEN: usize = 4;

/// Largest payload the codec accepts (16 MiB). A submit for a task with
/// hundreds of candidate paths is a few hundred KiB; anything near this
/// limit is garbage or abuse.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// The frame-type tags (byte 5 of the envelope). Requests are in
/// `0x01..=0x3F`, responses in `0x41..=0x7F`.
pub mod frame_type {
    /// Admission request.
    pub const SUBMIT: u8 = 0x01;
    /// Departure notice.
    pub const DEPART: u8 = 0x02;
    /// Metrics snapshot request.
    pub const SNAPSHOT: u8 = 0x03;
    /// Graceful-drain request.
    pub const DRAIN: u8 = 0x04;
    /// Elastic-reshard request (protocol v2).
    pub const SCALE: u8 = 0x05;
    /// Node self-registration with a gateway (protocol v3).
    pub const ANNOUNCE: u8 = 0x06;
    /// Node deregistration ahead of a graceful drain (protocol v3).
    pub const LEAVE: u8 = 0x07;
    /// Gateway-to-gateway load-digest request (protocol v4).
    pub const PEER_HELLO: u8 = 0x08;
    /// Gateway-to-gateway overflow forward (protocol v4).
    pub const FORWARD: u8 = 0x09;
    /// Admission verdict response.
    pub const OUTCOME: u8 = 0x41;
    /// Metrics snapshot response.
    pub const METRICS: u8 = 0x42;
    /// Error response.
    pub const ERROR: u8 = 0x43;
    /// Elastic-reshard response (protocol v2).
    pub const SCALED: u8 = 0x44;
    /// Membership decision + cluster view response (protocol v3).
    pub const MEMBERSHIP: u8 = 0x45;
    /// Gateway load-digest response (protocol v4).
    pub const PEER_LOAD: u8 = 0x46;
}

/// An admission request: a full task description plus its candidate
/// paths, and the client-side admission-deadline budget in microseconds
/// (`0` = use the server's policy deadline; otherwise the server enforces
/// the *tighter* of the two).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitRequest {
    /// Client-chosen correlation id echoed on the response.
    pub request_id: u64,
    /// Admission-deadline budget in µs (0 = server default).
    pub deadline_us: u64,
    /// The offloaded CV task and its requirements.
    pub task: Task,
    /// Candidate (path, quality) options for the task.
    pub options: Vec<PathOption>,
}

/// A departure notice for a previously admitted task. Fire-and-forget:
/// the server releases the capacity and sends no response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepartRequest {
    /// Correlation id (unused — departures get no response — but kept so
    /// every payload starts identically).
    pub request_id: u64,
    /// The departing task.
    pub task: TaskId,
}

/// Asks for a point-in-time [`MetricsSnapshot`]; answered by
/// [`Frame::Metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotRequest {
    /// Client-chosen correlation id echoed on the response.
    pub request_id: u64,
}

/// Begins a graceful server drain: ingress closes, every in-flight
/// outcome is flushed to its client, and the drain initiator receives a
/// final [`Frame::Metrics`] with [`MetricsResponse::is_final`] set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DrainRequest {
    /// Client-chosen correlation id echoed on the final metrics frame.
    pub request_id: u64,
}

/// Asks the server to reshape its shard fleet to `shards` workers at
/// runtime ([`offloadnn_serve::Service::scale_to`]); answered by
/// [`Frame::Scaled`] (or [`Frame::Error`] with
/// [`ErrorCode::InvalidScale`]). Protocol v2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScaleRequest {
    /// Client-chosen correlation id echoed on the response.
    pub request_id: u64,
    /// Desired shard count (must be >= 1).
    pub shards: u32,
}

/// The result of a completed reshard. Protocol v2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScaleResponse {
    /// Correlation id of the scale request this answers.
    pub request_id: u64,
    /// Shard count before the reshard.
    pub from_shards: u32,
    /// Shard count after the reshard.
    pub to_shards: u32,
    /// In-flight tasks migrated to new owner shards.
    pub migrated: u64,
    /// Ring generation after the reshard.
    pub generation: u64,
}

/// Lifecycle state of one cluster member, as the gateway's membership
/// engine tracks it (protocol v3). The wire tags are part of the
/// protocol; the state machine itself lives in `offloadnn-gateway`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemberState {
    /// Announced but not yet health-probed: invisible to routing until a
    /// probe succeeds (join-through-probation).
    Probing,
    /// Routable.
    Healthy,
    /// Temporarily unroutable (missed probes or a data-path failure);
    /// a post-probation probe readmits it.
    Ejected,
    /// Left the cluster (graceful [`Frame::Leave`] or an operator
    /// decision); only a *newer incarnation* announce brings it back.
    Departed,
}

impl MemberState {
    fn tag(self) -> u8 {
        match self {
            MemberState::Probing => 0,
            MemberState::Healthy => 1,
            MemberState::Ejected => 2,
            MemberState::Departed => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, DecodeError> {
        Ok(match tag {
            0 => MemberState::Probing,
            1 => MemberState::Healthy,
            2 => MemberState::Ejected,
            3 => MemberState::Departed,
            got => return Err(DecodeError::BadEnumTag { what: "member state", got }),
        })
    }
}

/// How the gateway judged an [`AnnounceRequest`] or [`LeaveRequest`]
/// (protocol v3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MembershipDecision {
    /// The request was applied (a join, restart or departure took
    /// effect).
    Accepted,
    /// The same incarnation was already known: a harmless replay,
    /// nothing changed.
    Duplicate,
    /// The incarnation is older than the one on record (or replays one
    /// that already departed); the request was ignored.
    Stale,
    /// The receiving backend does not manage a cluster membership (e.g.
    /// a single serve node was addressed directly).
    Unsupported,
}

impl MembershipDecision {
    fn tag(self) -> u8 {
        match self {
            MembershipDecision::Accepted => 0,
            MembershipDecision::Duplicate => 1,
            MembershipDecision::Stale => 2,
            MembershipDecision::Unsupported => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, DecodeError> {
        Ok(match tag {
            0 => MembershipDecision::Accepted,
            1 => MembershipDecision::Duplicate,
            2 => MembershipDecision::Stale,
            3 => MembershipDecision::Unsupported,
            got => return Err(DecodeError::BadEnumTag { what: "membership decision", got }),
        })
    }
}

/// One member in a [`MembershipResponse`] cluster view (protocol v3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemberInfo {
    /// The member's `offloadnn-net` frontend address.
    pub addr: String,
    /// The incarnation under which the member is currently registered.
    pub incarnation: u64,
    /// Its lifecycle state.
    pub state: MemberState,
}

/// A serve node registering itself with a gateway (protocol v3). The
/// incarnation is a per-process monotonic stamp (e.g. startup time in
/// nanoseconds): announces carrying an incarnation older than the one
/// on record are ignored, so a delayed or replayed announce can never
/// resurrect a node that has since departed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnnounceRequest {
    /// Client-chosen correlation id echoed on the response.
    pub request_id: u64,
    /// The announcing node's own frontend address, as the gateway should
    /// dial it.
    pub addr: String,
    /// The node's incarnation stamp.
    pub incarnation: u64,
}

/// A serve node deregistering ahead of a graceful drain (protocol v3).
/// Answered by [`Frame::Membership`] once the gateway has stopped
/// routing new work to the node; in-flight tickets fail over to the
/// survivors with their remaining deadline budget.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaveRequest {
    /// Client-chosen correlation id echoed on the response.
    pub request_id: u64,
    /// The departing node's frontend address.
    pub addr: String,
    /// The incarnation under which the node announced (a leave with an
    /// older incarnation than the record is stale and ignored).
    pub incarnation: u64,
}

/// One gateway introducing itself to a peer gateway and asking for its
/// load digest (protocol v4). Sent periodically by the federation
/// digest loop; answered by [`Frame::PeerLoad`]. The incarnation is the
/// sender's per-process monotonic stamp, so a peer can tell a restart
/// from a replay.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerHelloRequest {
    /// Client-chosen correlation id echoed on the response.
    pub request_id: u64,
    /// The sending gateway's own frontend address, as the peer should
    /// dial it back (and as it appears in [`ForwardRequest::tried`]).
    pub addr: String,
    /// The sending gateway's incarnation stamp.
    pub incarnation: u64,
}

/// A gateway's load digest (protocol v4): the three signals a peer needs
/// to rank forwarding targets without dialing every node itself.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeerLoadResponse {
    /// Correlation id of the [`Frame::PeerHello`] this answers.
    pub request_id: u64,
    /// Routable (healthy) nodes behind the answering gateway.
    pub healthy_nodes: u32,
    /// Aggregate remaining admission budget across those nodes — in-flight
    /// and queued work subtracted from capacity; higher is emptier.
    pub remaining_budget: f64,
    /// The p50 of the answering cluster's solver `round_ms` — how quickly
    /// a forwarded admission would actually be decided.
    pub round_ms_p50: f64,
    /// The answering gateway's cluster epoch (its membership version).
    /// A change invalidates plans the receiver cached against this peer.
    pub epoch: u64,
}

/// An overflow admission forwarded from a saturated gateway to a peer
/// (protocol v4). Carries the *remaining* deadline budget (never the
/// origin's policy default), a hop budget, and every gateway already
/// visited, so a task can neither loop nor revisit a peer. Answered by
/// an ordinary [`Frame::Outcome`] (or [`Frame::Error`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForwardRequest {
    /// Client-chosen correlation id echoed on the response.
    pub request_id: u64,
    /// Remaining deadline budget in µs (0 = the origin had no deadline;
    /// the receiver applies its own policy).
    pub deadline_us: u64,
    /// Remaining hop budget: how many more times this task may be
    /// forwarded on. 0 means the receiver must decide locally.
    pub hops: u8,
    /// The gateway where the task first arrived (peer-scoped plan-cache
    /// keying on the receiver).
    pub origin: String,
    /// Every gateway that has already held this task, origin included;
    /// the receiver never forwards to an address in this set.
    pub tried: Vec<String>,
    /// The offloaded CV task and its requirements.
    pub task: Task,
    /// Candidate (path, quality) options for the task.
    pub options: Vec<PathOption>,
}

/// The gateway's answer to an announce or leave: the decision plus a
/// point-in-time view of the whole cluster (protocol v3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MembershipResponse {
    /// Correlation id of the request this answers.
    pub request_id: u64,
    /// How the request was judged.
    pub decision: MembershipDecision,
    /// The cluster as the gateway sees it after applying the request.
    pub members: Vec<MemberInfo>,
}

/// The verdict of one submit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutcomeResponse {
    /// Correlation id of the submit this answers.
    pub request_id: u64,
    /// The admission verdict.
    pub outcome: Outcome,
}

/// A metrics snapshot (answer to [`Frame::Snapshot`] or, with
/// [`MetricsResponse::is_final`], to [`Frame::Drain`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricsResponse {
    /// Correlation id of the request this answers.
    pub request_id: u64,
    /// Whether this is the final snapshot of a drained server (no further
    /// frames follow on this connection).
    pub is_final: bool,
    /// The service metrics.
    pub metrics: MetricsSnapshot,
}

/// Machine-readable reason of an [`ErrorResponse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The service is draining and no longer accepts submits.
    Draining,
    /// The submit carried no candidate path options.
    NoOptions,
    /// The peer sent bytes the codec rejected (connection closes after
    /// this frame).
    Malformed,
    /// The server is at its connection limit (connection closes after
    /// this frame).
    TooManyConnections,
    /// An internal server failure (e.g. a worker died mid-request).
    Internal,
    /// A [`Frame::Scale`] was rejected (zero shards, or the service is
    /// draining). Protocol v2.
    InvalidScale,
}

impl ErrorCode {
    fn tag(self) -> u8 {
        match self {
            ErrorCode::Draining => 0,
            ErrorCode::NoOptions => 1,
            ErrorCode::Malformed => 2,
            ErrorCode::TooManyConnections => 3,
            ErrorCode::Internal => 4,
            ErrorCode::InvalidScale => 5,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, DecodeError> {
        Ok(match tag {
            0 => ErrorCode::Draining,
            1 => ErrorCode::NoOptions,
            2 => ErrorCode::Malformed,
            3 => ErrorCode::TooManyConnections,
            4 => ErrorCode::Internal,
            5 => ErrorCode::InvalidScale,
            got => return Err(DecodeError::BadEnumTag { what: "error code", got }),
        })
    }
}

impl From<SubmitError> for ErrorCode {
    fn from(e: SubmitError) -> Self {
        match e {
            SubmitError::Draining => ErrorCode::Draining,
            SubmitError::NoOptions => ErrorCode::NoOptions,
            // A backend can only report its *own* ingress unreachable as
            // an internal failure; the variant exists for client-side
            // Admitter impls and normally never crosses the wire.
            SubmitError::Unavailable => ErrorCode::Internal,
        }
    }
}

/// A request-level or connection-level failure. `request_id` 0 marks a
/// connection-level error (no specific request caused it).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Correlation id of the offending request, or 0.
    pub request_id: u64,
    /// Machine-readable reason.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

/// Everything that can travel on the wire.
///
/// Frames are transient — decoded, dispatched and dropped — so the size
/// skew from the histogram-carrying metrics variant is not worth the
/// boxing churn at every match site.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Frame {
    /// Admission request.
    Submit(SubmitRequest),
    /// Departure notice (fire-and-forget).
    Depart(DepartRequest),
    /// Metrics snapshot request.
    Snapshot(SnapshotRequest),
    /// Graceful-drain request.
    Drain(DrainRequest),
    /// Elastic-reshard request (protocol v2).
    Scale(ScaleRequest),
    /// Node self-registration with a gateway (protocol v3).
    Announce(AnnounceRequest),
    /// Node deregistration ahead of a graceful drain (protocol v3).
    Leave(LeaveRequest),
    /// Gateway-to-gateway load-digest request (protocol v4).
    PeerHello(PeerHelloRequest),
    /// Overflow admission forwarded between gateways (protocol v4).
    Forward(ForwardRequest),
    /// Admission verdict.
    Outcome(OutcomeResponse),
    /// Metrics snapshot.
    Metrics(MetricsResponse),
    /// Elastic-reshard response (protocol v2).
    Scaled(ScaleResponse),
    /// Membership decision + cluster view (protocol v3).
    Membership(MembershipResponse),
    /// Gateway load digest (protocol v4).
    PeerLoad(PeerLoadResponse),
    /// Request- or connection-level error.
    Error(ErrorResponse),
}

impl Frame {
    /// The wire tag of this frame's type.
    pub fn frame_type(&self) -> u8 {
        match self {
            Frame::Submit(_) => frame_type::SUBMIT,
            Frame::Depart(_) => frame_type::DEPART,
            Frame::Snapshot(_) => frame_type::SNAPSHOT,
            Frame::Drain(_) => frame_type::DRAIN,
            Frame::Scale(_) => frame_type::SCALE,
            Frame::Announce(_) => frame_type::ANNOUNCE,
            Frame::Leave(_) => frame_type::LEAVE,
            Frame::PeerHello(_) => frame_type::PEER_HELLO,
            Frame::Forward(_) => frame_type::FORWARD,
            Frame::Outcome(_) => frame_type::OUTCOME,
            Frame::Metrics(_) => frame_type::METRICS,
            Frame::Scaled(_) => frame_type::SCALED,
            Frame::Membership(_) => frame_type::MEMBERSHIP,
            Frame::PeerLoad(_) => frame_type::PEER_LOAD,
            Frame::Error(_) => frame_type::ERROR,
        }
    }

    /// Short name of the frame type (telemetry labels, log lines).
    pub fn type_name(&self) -> &'static str {
        match self {
            Frame::Submit(_) => "submit",
            Frame::Depart(_) => "depart",
            Frame::Snapshot(_) => "snapshot",
            Frame::Drain(_) => "drain",
            Frame::Scale(_) => "scale",
            Frame::Announce(_) => "announce",
            Frame::Leave(_) => "leave",
            Frame::PeerHello(_) => "peer_hello",
            Frame::Forward(_) => "forward",
            Frame::Outcome(_) => "outcome",
            Frame::Metrics(_) => "metrics",
            Frame::Scaled(_) => "scaled",
            Frame::Membership(_) => "membership",
            Frame::PeerLoad(_) => "peer_load",
            Frame::Error(_) => "error",
        }
    }

    /// The correlation id carried in the payload.
    pub fn request_id(&self) -> u64 {
        match self {
            Frame::Submit(f) => f.request_id,
            Frame::Depart(f) => f.request_id,
            Frame::Snapshot(f) => f.request_id,
            Frame::Drain(f) => f.request_id,
            Frame::Scale(f) => f.request_id,
            Frame::Announce(f) => f.request_id,
            Frame::Leave(f) => f.request_id,
            Frame::PeerHello(f) => f.request_id,
            Frame::Forward(f) => f.request_id,
            Frame::Outcome(f) => f.request_id,
            Frame::Metrics(f) => f.request_id,
            Frame::Scaled(f) => f.request_id,
            Frame::Membership(f) => f.request_id,
            Frame::PeerLoad(f) => f.request_id,
            Frame::Error(f) => f.request_id,
        }
    }
}

// ---------------------------------------------------------------- payloads

fn put_quality(w: &mut Writer, q: &QualityLevel) {
    w.put_f64(q.quality);
    w.put_f64(q.bits);
}

fn get_quality(r: &mut Reader<'_>) -> Result<QualityLevel, DecodeError> {
    Ok(QualityLevel { quality: r.f64("quality.quality")?, bits: r.f64("quality.bits")? })
}

fn put_task(w: &mut Writer, t: &Task) {
    w.put_u32(t.id.0);
    w.put_str(&t.name);
    w.put_u32(t.group.0);
    w.put_f64(t.priority);
    w.put_f64(t.request_rate);
    w.put_f64(t.min_accuracy);
    w.put_f64(t.max_latency);
    w.put_f64(t.snr.0);
    w.put_seq_len(t.qualities.len());
    for q in &t.qualities {
        put_quality(w, q);
    }
    w.put_f64(t.difficulty);
}

fn get_task(r: &mut Reader<'_>) -> Result<Task, DecodeError> {
    let id = TaskId(r.u32("task.id")?);
    let name = r.string("task.name")?;
    let group = GroupId(r.u32("task.group")?);
    let priority = r.f64("task.priority")?;
    let request_rate = r.f64("task.request_rate")?;
    let min_accuracy = r.f64("task.min_accuracy")?;
    let max_latency = r.f64("task.max_latency")?;
    let snr = SnrDb(r.f64("task.snr")?);
    let n = r.seq_len(16, "task.qualities")?;
    let mut qualities = Vec::with_capacity(n);
    for _ in 0..n {
        qualities.push(get_quality(r)?);
    }
    let difficulty = r.f64("task.difficulty")?;
    Ok(Task {
        id,
        name,
        group,
        priority,
        request_rate,
        min_accuracy,
        max_latency,
        snr,
        qualities,
        difficulty,
    })
}

fn put_path_config(w: &mut Writer, c: &PathConfig) {
    let tag = match c.config {
        Config::A => 0u8,
        Config::B => 1,
        Config::C => 2,
        Config::D => 3,
        Config::E => 4,
    };
    w.put_u8(tag);
    w.put_u8(u8::from(c.pruned));
}

fn get_path_config(r: &mut Reader<'_>) -> Result<PathConfig, DecodeError> {
    let config = match r.u8("path.config")? {
        0 => Config::A,
        1 => Config::B,
        2 => Config::C,
        3 => Config::D,
        4 => Config::E,
        got => return Err(DecodeError::BadEnumTag { what: "path config", got }),
    };
    let pruned = match r.u8("path.pruned")? {
        0 => false,
        1 => true,
        got => return Err(DecodeError::BadEnumTag { what: "path pruned flag", got }),
    };
    Ok(PathConfig { config, pruned })
}

fn put_option(w: &mut Writer, o: &PathOption) {
    w.put_u32(o.path.model.0);
    w.put_u32(o.path.group.0);
    put_path_config(w, &o.path.config);
    w.put_seq_len(o.path.blocks.len());
    for b in &o.path.blocks {
        w.put_u32(b.0);
    }
    put_quality(w, &o.quality);
    w.put_f64(o.accuracy);
    w.put_f64(o.proc_seconds);
    w.put_f64(o.training_seconds);
    w.put_str(&o.label);
}

fn get_option(r: &mut Reader<'_>) -> Result<PathOption, DecodeError> {
    let model = ModelId(r.u32("option.model")?);
    let group = GroupId(r.u32("option.group")?);
    let config = get_path_config(r)?;
    let n = r.seq_len(4, "option.blocks")?;
    let mut blocks = Vec::with_capacity(n);
    for _ in 0..n {
        blocks.push(BlockId(r.u32("option.block")?));
    }
    let path = DnnPath { model, group, config, blocks };
    let quality = get_quality(r)?;
    let accuracy = r.f64("option.accuracy")?;
    let proc_seconds = r.f64("option.proc_seconds")?;
    let training_seconds = r.f64("option.training_seconds")?;
    let label = r.string("option.label")?;
    Ok(PathOption { path, quality, accuracy, proc_seconds, training_seconds, label })
}

fn put_outcome(w: &mut Writer, o: &Outcome) {
    match o {
        Outcome::Admitted { admission, rbs, shard } => {
            w.put_u8(0);
            w.put_f64(*admission);
            w.put_f64(*rbs);
            w.put_u64(*shard as u64);
        }
        Outcome::Rejected { shard } => {
            w.put_u8(1);
            w.put_u64(*shard as u64);
        }
        Outcome::Shed { shard } => {
            w.put_u8(2);
            w.put_u64(*shard as u64);
        }
        Outcome::Expired { shard } => {
            w.put_u8(3);
            w.put_u64(*shard as u64);
        }
    }
}

fn get_outcome(r: &mut Reader<'_>) -> Result<Outcome, DecodeError> {
    Ok(match r.u8("outcome.tag")? {
        0 => {
            let admission = r.f64("outcome.admission")?;
            let rbs = r.f64("outcome.rbs")?;
            let shard = r.u64("outcome.shard")? as usize;
            Outcome::Admitted { admission, rbs, shard }
        }
        1 => Outcome::Rejected { shard: r.u64("outcome.shard")? as usize },
        2 => Outcome::Shed { shard: r.u64("outcome.shard")? as usize },
        3 => Outcome::Expired { shard: r.u64("outcome.shard")? as usize },
        got => return Err(DecodeError::BadEnumTag { what: "outcome", got }),
    })
}

fn put_histogram(w: &mut Writer, h: &HistogramSnapshot) {
    w.put_seq_len(h.buckets.len());
    for &b in &h.buckets {
        w.put_u64(b);
    }
    w.put_u64(h.count);
    w.put_u64(h.sum_us);
}

fn get_histogram(r: &mut Reader<'_>) -> Result<HistogramSnapshot, DecodeError> {
    let n = r.seq_len(8, "histogram.buckets")?;
    if n != HISTOGRAM_BUCKETS {
        return Err(DecodeError::WrongLength {
            what: "histogram.buckets",
            got: n as u32,
            want: HISTOGRAM_BUCKETS as u32,
        });
    }
    let mut buckets = [0u64; HISTOGRAM_BUCKETS];
    for b in &mut buckets {
        *b = r.u64("histogram.bucket")?;
    }
    let count = r.u64("histogram.count")?;
    let sum_us = r.u64("histogram.sum_us")?;
    Ok(HistogramSnapshot { buckets, count, sum_us })
}

fn put_metrics(w: &mut Writer, m: &MetricsSnapshot) {
    w.put_u64(m.submitted);
    w.put_u64(m.admitted);
    w.put_u64(m.rejected);
    w.put_u64(m.shed);
    w.put_u64(m.expired);
    w.put_u64(m.departed);
    w.put_u64(m.solver_rounds);
    w.put_u64(m.solver_errors);
    w.put_u64(m.peak_queue_depth);
    w.put_u64(m.peak_batch);
    // v2 additions sit between the v1 counters and the histograms.
    w.put_u64(m.reshards);
    w.put_u64(m.migrated);
    w.put_u64(m.generation);
    put_histogram(w, &m.latency);
    put_histogram(w, &m.round_time);
}

fn get_metrics(r: &mut Reader<'_>, version: u8) -> Result<MetricsSnapshot, DecodeError> {
    let submitted = r.u64("metrics.submitted")?;
    let admitted = r.u64("metrics.admitted")?;
    let rejected = r.u64("metrics.rejected")?;
    let shed = r.u64("metrics.shed")?;
    let expired = r.u64("metrics.expired")?;
    let departed = r.u64("metrics.departed")?;
    let solver_rounds = r.u64("metrics.solver_rounds")?;
    let solver_errors = r.u64("metrics.solver_errors")?;
    let peak_queue_depth = r.u64("metrics.peak_queue_depth")?;
    let peak_batch = r.u64("metrics.peak_batch")?;
    // A v1 peer predates elastic resharding: its payload has no reshard
    // counters, which therefore read as zero.
    let (reshards, migrated, generation) = if version >= 2 {
        (r.u64("metrics.reshards")?, r.u64("metrics.migrated")?, r.u64("metrics.generation")?)
    } else {
        (0, 0, 0)
    };
    Ok(MetricsSnapshot {
        submitted,
        admitted,
        rejected,
        shed,
        expired,
        departed,
        solver_rounds,
        solver_errors,
        reshards,
        migrated,
        generation,
        peak_queue_depth,
        peak_batch,
        latency: get_histogram(r)?,
        round_time: get_histogram(r)?,
    })
}

fn put_member(w: &mut Writer, m: &MemberInfo) {
    w.put_str(&m.addr);
    w.put_u64(m.incarnation);
    w.put_u8(m.state.tag());
}

fn get_member(r: &mut Reader<'_>) -> Result<MemberInfo, DecodeError> {
    let addr = r.string("member.addr")?;
    let incarnation = r.u64("member.incarnation")?;
    let state = MemberState::from_tag(r.u8("member.state")?)?;
    Ok(MemberInfo { addr, incarnation, state })
}

fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(frame.request_id());
    match frame {
        Frame::Submit(f) => {
            w.put_u64(f.deadline_us);
            put_task(&mut w, &f.task);
            w.put_seq_len(f.options.len());
            for o in &f.options {
                put_option(&mut w, o);
            }
        }
        Frame::Depart(f) => w.put_u32(f.task.0),
        Frame::Snapshot(_) | Frame::Drain(_) => {}
        Frame::Scale(f) => w.put_u32(f.shards),
        Frame::Announce(f) => {
            w.put_str(&f.addr);
            w.put_u64(f.incarnation);
        }
        Frame::Leave(f) => {
            w.put_str(&f.addr);
            w.put_u64(f.incarnation);
        }
        Frame::PeerHello(f) => {
            w.put_str(&f.addr);
            w.put_u64(f.incarnation);
        }
        Frame::Forward(f) => {
            w.put_u64(f.deadline_us);
            w.put_u8(f.hops);
            w.put_str(&f.origin);
            w.put_seq_len(f.tried.len());
            for t in &f.tried {
                w.put_str(t);
            }
            put_task(&mut w, &f.task);
            w.put_seq_len(f.options.len());
            for o in &f.options {
                put_option(&mut w, o);
            }
        }
        Frame::PeerLoad(f) => {
            w.put_u32(f.healthy_nodes);
            w.put_f64(f.remaining_budget);
            w.put_f64(f.round_ms_p50);
            w.put_u64(f.epoch);
        }
        Frame::Membership(f) => {
            w.put_u8(f.decision.tag());
            w.put_seq_len(f.members.len());
            for m in &f.members {
                put_member(&mut w, m);
            }
        }
        Frame::Scaled(f) => {
            w.put_u32(f.from_shards);
            w.put_u32(f.to_shards);
            w.put_u64(f.migrated);
            w.put_u64(f.generation);
        }
        Frame::Outcome(f) => put_outcome(&mut w, &f.outcome),
        Frame::Metrics(f) => {
            w.put_u8(u8::from(f.is_final));
            put_metrics(&mut w, &f.metrics);
        }
        Frame::Error(f) => {
            w.put_u8(f.code.tag());
            w.put_str(&f.message);
        }
    }
    w.into_bytes()
}

fn decode_payload(version: u8, frame_type: u8, payload: &[u8]) -> Result<Frame, DecodeError> {
    let mut r = Reader::new(payload);
    let request_id = r.u64("request_id")?;
    let frame = match frame_type {
        frame_type::SUBMIT => {
            let deadline_us = r.u64("submit.deadline_us")?;
            let task = get_task(&mut r)?;
            let n = r.seq_len(32, "submit.options")?;
            let mut options = Vec::with_capacity(n);
            for _ in 0..n {
                options.push(get_option(&mut r)?);
            }
            Frame::Submit(SubmitRequest { request_id, deadline_us, task, options })
        }
        frame_type::DEPART => {
            Frame::Depart(DepartRequest { request_id, task: TaskId(r.u32("depart.task")?) })
        }
        frame_type::SNAPSHOT => Frame::Snapshot(SnapshotRequest { request_id }),
        frame_type::DRAIN => Frame::Drain(DrainRequest { request_id }),
        // The reshard frames did not exist in v1; a v1 frame claiming
        // one of their tags is garbage, not forward compatibility.
        frame_type::SCALE if version >= 2 => {
            Frame::Scale(ScaleRequest { request_id, shards: r.u32("scale.shards")? })
        }
        frame_type::SCALED if version >= 2 => Frame::Scaled(ScaleResponse {
            request_id,
            from_shards: r.u32("scaled.from_shards")?,
            to_shards: r.u32("scaled.to_shards")?,
            migrated: r.u64("scaled.migrated")?,
            generation: r.u64("scaled.generation")?,
        }),
        // Likewise the discovery frames did not exist before v3.
        frame_type::ANNOUNCE if version >= 3 => Frame::Announce(AnnounceRequest {
            request_id,
            addr: r.string("announce.addr")?,
            incarnation: r.u64("announce.incarnation")?,
        }),
        frame_type::LEAVE if version >= 3 => Frame::Leave(LeaveRequest {
            request_id,
            addr: r.string("leave.addr")?,
            incarnation: r.u64("leave.incarnation")?,
        }),
        // And the federation frames did not exist before v4.
        frame_type::PEER_HELLO if version >= 4 => Frame::PeerHello(PeerHelloRequest {
            request_id,
            addr: r.string("peer_hello.addr")?,
            incarnation: r.u64("peer_hello.incarnation")?,
        }),
        frame_type::FORWARD if version >= 4 => {
            let deadline_us = r.u64("forward.deadline_us")?;
            let hops = r.u8("forward.hops")?;
            let origin = r.string("forward.origin")?;
            let n = r.seq_len(4, "forward.tried")?;
            let mut tried = Vec::with_capacity(n);
            for _ in 0..n {
                tried.push(r.string("forward.tried_addr")?);
            }
            let task = get_task(&mut r)?;
            let n = r.seq_len(32, "forward.options")?;
            let mut options = Vec::with_capacity(n);
            for _ in 0..n {
                options.push(get_option(&mut r)?);
            }
            Frame::Forward(ForwardRequest { request_id, deadline_us, hops, origin, tried, task, options })
        }
        frame_type::PEER_LOAD if version >= 4 => Frame::PeerLoad(PeerLoadResponse {
            request_id,
            healthy_nodes: r.u32("peer_load.healthy_nodes")?,
            remaining_budget: r.f64("peer_load.remaining_budget")?,
            round_ms_p50: r.f64("peer_load.round_ms_p50")?,
            epoch: r.u64("peer_load.epoch")?,
        }),
        frame_type::MEMBERSHIP if version >= 3 => {
            let decision = MembershipDecision::from_tag(r.u8("membership.decision")?)?;
            // addr length prefix (4) + incarnation (8) + state tag (1).
            let n = r.seq_len(13, "membership.members")?;
            let mut members = Vec::with_capacity(n);
            for _ in 0..n {
                members.push(get_member(&mut r)?);
            }
            Frame::Membership(MembershipResponse { request_id, decision, members })
        }
        frame_type::OUTCOME => Frame::Outcome(OutcomeResponse { request_id, outcome: get_outcome(&mut r)? }),
        frame_type::METRICS => {
            let is_final = match r.u8("metrics.is_final")? {
                0 => false,
                1 => true,
                got => return Err(DecodeError::BadEnumTag { what: "metrics final flag", got }),
            };
            Frame::Metrics(MetricsResponse { request_id, is_final, metrics: get_metrics(&mut r, version)? })
        }
        frame_type::ERROR => {
            let code = ErrorCode::from_tag(r.u8("error.code")?)?;
            let message = r.string("error.message")?;
            Frame::Error(ErrorResponse { request_id, code, message })
        }
        got => return Err(DecodeError::UnknownFrameType { got }),
    };
    r.finish()?;
    Ok(frame)
}

// ---------------------------------------------------------------- envelope

/// Wraps an already-encoded payload in the envelope (header + checksum)
/// at the current [`VERSION`]. Exposed so tests can frame hand-crafted
/// hostile payloads with a valid checksum; production code uses
/// [`encode`].
pub fn encode_raw(frame_type: u8, payload: &[u8]) -> Vec<u8> {
    encode_raw_versioned(VERSION, frame_type, payload)
}

/// Like [`encode_raw`] but with an explicit protocol version byte, so
/// compatibility tests can frame payloads as an older (or bogus) peer
/// would.
pub fn encode_raw_versioned(version: u8, frame_type: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    buf.extend_from_slice(&MAGIC);
    buf.push(version);
    buf.push(frame_type);
    buf.extend_from_slice(&[0, 0]); // reserved
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    let checksum = fnv1a32(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf
}

/// Per-frame-type transmit counters (`net.tx.<type>`). The `count!`
/// macro needs literal names, hence the match.
fn count_tx(frame: &Frame) {
    match frame {
        Frame::Submit(_) => count!("net.tx.submit"),
        Frame::Depart(_) => count!("net.tx.depart"),
        Frame::Snapshot(_) => count!("net.tx.snapshot"),
        Frame::Drain(_) => count!("net.tx.drain"),
        Frame::Scale(_) => count!("net.tx.scale"),
        Frame::Announce(_) => count!("net.tx.announce"),
        Frame::Leave(_) => count!("net.tx.leave"),
        Frame::PeerHello(_) => count!("net.tx.peer_hello"),
        Frame::Forward(_) => count!("net.tx.forward"),
        Frame::Outcome(_) => count!("net.tx.outcome"),
        Frame::Metrics(_) => count!("net.tx.metrics"),
        Frame::Scaled(_) => count!("net.tx.scaled"),
        Frame::Membership(_) => count!("net.tx.membership"),
        Frame::PeerLoad(_) => count!("net.tx.peer_load"),
        Frame::Error(_) => count!("net.tx.error"),
    }
}

/// Per-frame-type receive counters (`net.rx.<type>`).
fn count_rx(frame: &Frame) {
    match frame {
        Frame::Submit(_) => count!("net.rx.submit"),
        Frame::Depart(_) => count!("net.rx.depart"),
        Frame::Snapshot(_) => count!("net.rx.snapshot"),
        Frame::Drain(_) => count!("net.rx.drain"),
        Frame::Scale(_) => count!("net.rx.scale"),
        Frame::Announce(_) => count!("net.rx.announce"),
        Frame::Leave(_) => count!("net.rx.leave"),
        Frame::PeerHello(_) => count!("net.rx.peer_hello"),
        Frame::Forward(_) => count!("net.rx.forward"),
        Frame::Outcome(_) => count!("net.rx.outcome"),
        Frame::Metrics(_) => count!("net.rx.metrics"),
        Frame::Scaled(_) => count!("net.rx.scaled"),
        Frame::Membership(_) => count!("net.rx.membership"),
        Frame::PeerLoad(_) => count!("net.rx.peer_load"),
        Frame::Error(_) => count!("net.rx.error"),
    }
}

/// The lowest protocol version able to express `frame` — the version its
/// envelope is stamped with, so a peer built against an older revision
/// keeps understanding every frame type it knows.
pub fn frame_min_version(frame: &Frame) -> u8 {
    match frame {
        Frame::Submit(_) | Frame::Depart(_) | Frame::Snapshot(_) | Frame::Drain(_) => 1,
        Frame::Outcome(_) | Frame::Error(_) => 1,
        // Metrics grew the reshard fields in v2 and this build always
        // writes them, so the frame must be stamped v2.
        Frame::Scale(_) | Frame::Scaled(_) | Frame::Metrics(_) => 2,
        Frame::Announce(_) | Frame::Leave(_) | Frame::Membership(_) => 3,
        Frame::PeerHello(_) | Frame::Forward(_) | Frame::PeerLoad(_) => 4,
    }
}

/// Encodes one frame into its wire bytes, stamped with the lowest
/// protocol version that can express it (see [`frame_min_version`]).
pub fn encode(frame: &Frame) -> Vec<u8> {
    let _span = span!("net.encode");
    count_tx(frame);
    encode_raw_versioned(frame_min_version(frame), frame.frame_type(), &encode_payload(frame))
}

/// Streaming decode: parses one frame off the front of `buf`.
///
/// * `Ok(None)` — the buffer does not yet hold a complete frame (read
///   more bytes and retry). Header fields that have already arrived are
///   still validated, so garbage fails fast without waiting for a bogus
///   payload length to "complete".
/// * `Ok(Some((frame, consumed)))` — one frame, and how many bytes of
///   `buf` it used.
/// * `Err(_)` — the bytes are not a valid frame; the stream cannot be
///   re-synchronised and the connection should close.
///
/// # Errors
///
/// Any [`DecodeError`]; never panics, whatever the input.
pub fn decode(buf: &[u8]) -> Result<Option<(Frame, usize)>, DecodeError> {
    decode_capped(buf, VERSION)
}

/// [`decode`] with an explicit version cap: behaves exactly like a peer
/// built when `cap` was the newest protocol revision.
///
/// A well-formed frame stamped with a version above `cap` is **skipped**
/// — its envelope (magic / length / trailing checksum) is laid out
/// identically in every version, so the checksum can be verified and the
/// frame stepped over without desyncing the stream; `consumed` then
/// covers the skipped bytes too. A frame above `cap` whose checksum does
/// not verify is fatal ([`DecodeError::UnsupportedVersion`]): nothing
/// about it can be trusted, not even its length. This is how v1/v2
/// clients survive a v3 peer's discovery frames.
///
/// # Errors
///
/// Any [`DecodeError`]; never panics, whatever the input.
pub fn decode_capped(buf: &[u8], cap: u8) -> Result<Option<(Frame, usize)>, DecodeError> {
    let _span = span!("net.decode");
    let mut offset = 0;
    loop {
        let rest = &buf[offset..];
        if rest.len() < HEADER_LEN {
            // Validate the prefix that *has* arrived so garbage fails fast.
            if !rest.is_empty() && rest[..rest.len().min(4)] != MAGIC[..rest.len().min(4)] {
                let mut got = [0u8; 4];
                got[..rest.len().min(4)].copy_from_slice(&rest[..rest.len().min(4)]);
                return Err(DecodeError::BadMagic { got });
            }
            return Ok(None);
        }
        if rest[..4] != MAGIC {
            return Err(DecodeError::BadMagic { got: [rest[0], rest[1], rest[2], rest[3]] });
        }
        let version = rest[4];
        if version < MIN_VERSION {
            return Err(DecodeError::UnsupportedVersion { got: version });
        }
        if rest[6] != 0 || rest[7] != 0 {
            return Err(DecodeError::NonZeroReserved);
        }
        let len = u32::from_le_bytes([rest[8], rest[9], rest[10], rest[11]]);
        if len > MAX_PAYLOAD {
            return Err(DecodeError::OversizedPayload { len });
        }
        let total = HEADER_LEN + len as usize + TRAILER_LEN;
        if rest.len() < total {
            return Ok(None);
        }
        let body_end = HEADER_LEN + len as usize;
        let expected = fnv1a32(&rest[..body_end]);
        let got =
            u32::from_le_bytes([rest[body_end], rest[body_end + 1], rest[body_end + 2], rest[body_end + 3]]);
        if version > cap {
            // A frame from the future. Its envelope checksummed out ⇒ the
            // length was honest and the stream stays in sync: step over
            // it. A checksum mismatch means the envelope itself cannot be
            // trusted (the "length" may be noise), so the only safe move
            // is to drop the connection.
            if expected != got {
                return Err(DecodeError::UnsupportedVersion { got: version });
            }
            count!("net.rx.skipped");
            offset += total;
            continue;
        }
        if expected != got {
            return Err(DecodeError::BadChecksum { expected, got });
        }
        let frame = decode_payload(version, rest[5], &rest[HEADER_LEN..body_end])?;
        count_rx(&frame);
        return Ok(Some((frame, offset + total)));
    }
}

/// Decodes a buffer expected to hold exactly one whole frame.
///
/// # Errors
///
/// [`DecodeError::Truncated`] if the buffer is incomplete,
/// [`DecodeError::TrailingBytes`] if bytes follow the frame, and any
/// streaming [`decode`] error otherwise. Never panics.
pub fn decode_exact(buf: &[u8]) -> Result<Frame, DecodeError> {
    match decode(buf)? {
        Some((frame, consumed)) if consumed == buf.len() => Ok(frame),
        Some((_, consumed)) => Err(DecodeError::TrailingBytes { extra: buf.len() - consumed }),
        None => Err(DecodeError::Truncated { field: "frame" }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use offloadnn_core::scenario::small_scenario;

    pub(crate) fn sample_submit() -> Frame {
        let s = small_scenario(3);
        Frame::Submit(SubmitRequest {
            request_id: 42,
            deadline_us: 1_500_000,
            task: s.instance.tasks[1].clone(),
            options: s.instance.options[1].clone(),
        })
    }

    pub(crate) fn sample_forward() -> Frame {
        let s = small_scenario(3);
        Frame::Forward(ForwardRequest {
            request_id: 14,
            deadline_us: 850_000,
            hops: 1,
            origin: "127.0.0.1:7000".to_owned(),
            tried: vec!["127.0.0.1:7000".to_owned(), "127.0.0.1:7001".to_owned()],
            task: s.instance.tasks[2].clone(),
            options: s.instance.options[2].clone(),
        })
    }

    fn sample_metrics() -> MetricsSnapshot {
        let mut latency = HistogramSnapshot { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum_us: 0 };
        latency.buckets[3] = 17;
        latency.count = 17;
        latency.sum_us = 1234;
        MetricsSnapshot {
            submitted: 100,
            admitted: 60,
            rejected: 20,
            shed: 15,
            expired: 5,
            departed: 30,
            solver_rounds: 9,
            solver_errors: 0,
            reshards: 2,
            migrated: 11,
            generation: 2,
            peak_queue_depth: 77,
            peak_batch: 64,
            latency,
            round_time: HistogramSnapshot { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum_us: 0 },
        }
    }

    pub(crate) fn sample_frames() -> Vec<Frame> {
        vec![
            sample_submit(),
            Frame::Depart(DepartRequest { request_id: 7, task: TaskId(99) }),
            Frame::Snapshot(SnapshotRequest { request_id: 8 }),
            Frame::Drain(DrainRequest { request_id: 9 }),
            Frame::Scale(ScaleRequest { request_id: 10, shards: 6 }),
            Frame::Scaled(ScaleResponse {
                request_id: 10,
                from_shards: 4,
                to_shards: 6,
                migrated: 13,
                generation: 1,
            }),
            Frame::Outcome(OutcomeResponse {
                request_id: 42,
                outcome: Outcome::Admitted { admission: 0.75, rbs: 12.5, shard: 3 },
            }),
            Frame::Outcome(OutcomeResponse { request_id: 43, outcome: Outcome::Expired { shard: 1 } }),
            Frame::Metrics(MetricsResponse { request_id: 8, is_final: true, metrics: sample_metrics() }),
            Frame::Announce(AnnounceRequest {
                request_id: 11,
                addr: "127.0.0.1:9000".to_owned(),
                incarnation: 170_000_000_123,
            }),
            Frame::Leave(LeaveRequest {
                request_id: 12,
                addr: "127.0.0.1:9000".to_owned(),
                incarnation: 170_000_000_123,
            }),
            Frame::Membership(MembershipResponse {
                request_id: 11,
                decision: MembershipDecision::Accepted,
                members: vec![
                    MemberInfo {
                        addr: "127.0.0.1:9000".to_owned(),
                        incarnation: 170_000_000_123,
                        state: MemberState::Probing,
                    },
                    MemberInfo {
                        addr: "127.0.0.1:9001".to_owned(),
                        incarnation: 0,
                        state: MemberState::Healthy,
                    },
                    MemberInfo {
                        addr: "127.0.0.1:9002".to_owned(),
                        incarnation: 3,
                        state: MemberState::Departed,
                    },
                ],
            }),
            Frame::Membership(MembershipResponse {
                request_id: 12,
                decision: MembershipDecision::Unsupported,
                members: vec![],
            }),
            Frame::PeerHello(PeerHelloRequest {
                request_id: 13,
                addr: "127.0.0.1:7000".to_owned(),
                incarnation: 170_000_000_456,
            }),
            Frame::PeerLoad(PeerLoadResponse {
                request_id: 13,
                healthy_nodes: 3,
                remaining_budget: 41.5,
                round_ms_p50: 2.25,
                epoch: 9,
            }),
            sample_forward(),
            Frame::Error(ErrorResponse {
                request_id: 44,
                code: ErrorCode::Draining,
                message: "service is draining".to_owned(),
            }),
        ]
    }

    #[test]
    fn every_frame_type_round_trips() {
        for frame in sample_frames() {
            let bytes = encode(&frame);
            let decoded = decode_exact(&bytes).expect("round trip");
            assert_eq!(decoded, frame);
            // Streaming decode agrees on the byte count.
            let (streamed, consumed) = decode(&bytes).unwrap().expect("complete");
            assert_eq!(consumed, bytes.len());
            assert_eq!(streamed, frame);
        }
    }

    #[test]
    fn streaming_decode_waits_for_a_whole_frame() {
        let bytes = encode(&sample_submit());
        for cut in 0..bytes.len() {
            let r = decode(&bytes[..cut]);
            assert_eq!(r, Ok(None), "prefix of {cut} bytes must be incomplete, not an error");
        }
    }

    #[test]
    fn two_frames_back_to_back_parse_in_order() {
        let a = Frame::Snapshot(SnapshotRequest { request_id: 1 });
        let b = Frame::Drain(DrainRequest { request_id: 2 });
        let mut bytes = encode(&a);
        bytes.extend_from_slice(&encode(&b));
        let (first, used) = decode(&bytes).unwrap().unwrap();
        assert_eq!(first, a);
        let (second, used2) = decode(&bytes[used..]).unwrap().unwrap();
        assert_eq!(second, b);
        assert_eq!(used + used2, bytes.len());
    }

    #[test]
    fn foreign_histogram_bucket_count_is_rejected() {
        let mut w = Writer::new();
        w.put_u64(5); // request id
        w.put_u8(0); // not final
        for _ in 0..13 {
            w.put_u64(1); // the 13 v2 counter fields
        }
        w.put_seq_len(4); // wrong bucket count
        for _ in 0..4 {
            w.put_u64(0);
        }
        w.put_u64(0);
        w.put_u64(0);
        w.put_u64(0);
        w.put_u64(0);
        let bytes = encode_raw(frame_type::METRICS, &w.into_bytes());
        assert!(matches!(
            decode_exact(&bytes),
            Err(DecodeError::WrongLength { what: "histogram.buckets", .. })
        ));
    }

    /// Encodes `m` the way a v1 peer would: the ten original counters,
    /// no reshard fields.
    fn encode_v1_metrics_payload(request_id: u64, is_final: bool, m: &MetricsSnapshot) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(request_id);
        w.put_u8(u8::from(is_final));
        for v in [
            m.submitted,
            m.admitted,
            m.rejected,
            m.shed,
            m.expired,
            m.departed,
            m.solver_rounds,
            m.solver_errors,
            m.peak_queue_depth,
            m.peak_batch,
        ] {
            w.put_u64(v);
        }
        put_histogram(&mut w, &m.latency);
        put_histogram(&mut w, &m.round_time);
        w.into_bytes()
    }

    #[test]
    fn v1_metrics_frames_still_decode_with_zero_reshard_fields() {
        let m = sample_metrics();
        let payload = encode_v1_metrics_payload(8, true, &m);
        let bytes = encode_raw_versioned(1, frame_type::METRICS, &payload);
        let decoded = decode_exact(&bytes).expect("v1 metrics decode");
        let Frame::Metrics(resp) = decoded else { panic!("expected metrics, got {decoded:?}") };
        assert_eq!(resp.request_id, 8);
        assert!(resp.is_final);
        assert_eq!(resp.metrics.submitted, m.submitted);
        assert_eq!(resp.metrics.peak_batch, m.peak_batch);
        assert_eq!(resp.metrics.latency, m.latency);
        assert_eq!(resp.metrics.reshards, 0, "v1 has no reshard counters");
        assert_eq!(resp.metrics.migrated, 0);
        assert_eq!(resp.metrics.generation, 0);
    }

    #[test]
    fn v1_request_frames_still_decode() {
        // Request payloads are unchanged between v1 and v2; only the
        // envelope version differs.
        for frame in [
            Frame::Snapshot(SnapshotRequest { request_id: 3 }),
            Frame::Drain(DrainRequest { request_id: 4 }),
            Frame::Depart(DepartRequest { request_id: 5, task: TaskId(12) }),
        ] {
            let bytes = encode_raw_versioned(1, frame.frame_type(), &encode_payload(&frame));
            assert_eq!(decode_exact(&bytes).expect("v1 decode"), frame);
        }
    }

    #[test]
    fn scale_frames_are_not_valid_in_v1() {
        let frame = Frame::Scale(ScaleRequest { request_id: 1, shards: 4 });
        let bytes = encode_raw_versioned(1, frame.frame_type(), &encode_payload(&frame));
        assert!(matches!(
            decode_exact(&bytes),
            Err(DecodeError::UnknownFrameType { got: frame_type::SCALE })
        ));
    }

    #[test]
    fn membership_frames_are_not_valid_before_v3() {
        for (frame, tag) in [
            (
                Frame::Announce(AnnounceRequest {
                    request_id: 1,
                    addr: "127.0.0.1:9000".to_owned(),
                    incarnation: 5,
                }),
                frame_type::ANNOUNCE,
            ),
            (
                Frame::Leave(LeaveRequest {
                    request_id: 2,
                    addr: "127.0.0.1:9000".to_owned(),
                    incarnation: 5,
                }),
                frame_type::LEAVE,
            ),
            (
                Frame::Membership(MembershipResponse {
                    request_id: 3,
                    decision: MembershipDecision::Accepted,
                    members: vec![],
                }),
                frame_type::MEMBERSHIP,
            ),
        ] {
            for version in [1, 2] {
                let bytes = encode_raw_versioned(version, tag, &encode_payload(&frame));
                assert!(
                    matches!(decode_exact(&bytes), Err(DecodeError::UnknownFrameType { got }) if got == tag),
                    "a v{version} envelope must not carry frame type {tag:#04x}"
                );
            }
        }
    }

    #[test]
    fn frames_are_stamped_with_their_minimum_version() {
        for frame in sample_frames() {
            let bytes = encode(&frame);
            assert_eq!(
                bytes[4],
                frame_min_version(&frame),
                "{} must travel at its minimum version",
                frame.type_name()
            );
            assert!(frame_min_version(&frame) <= VERSION);
        }
    }

    /// The forward-compatibility contract the v3 frames rely on: a peer
    /// capped at v1/v2 steps over well-formed frames from the future and
    /// keeps decoding the stream behind them.
    #[test]
    fn capped_decoders_skip_future_frames_without_desync() {
        let announce = Frame::Announce(AnnounceRequest {
            request_id: 1,
            addr: "127.0.0.1:9000".to_owned(),
            incarnation: 7,
        });
        let snapshot = Frame::Snapshot(SnapshotRequest { request_id: 2 });
        let mut bytes = encode(&announce);
        let skipped = bytes.len();
        bytes.extend_from_slice(&encode(&snapshot));
        for cap in [1, 2] {
            let (frame, consumed) = decode_capped(&bytes, cap)
                .expect("future frame must be skipped, not fatal")
                .expect("the known frame behind it must decode");
            assert_eq!(frame, snapshot, "cap {cap}");
            assert_eq!(consumed, bytes.len(), "consumed must cover the skipped frame too");
        }
        // An uncapped decoder sees both frames in order.
        let (first, used) = decode(&bytes).unwrap().unwrap();
        assert_eq!(first, announce);
        assert_eq!(used, skipped);
    }

    #[test]
    fn a_lone_future_frame_is_incomplete_not_an_error() {
        let announce = Frame::Announce(AnnounceRequest {
            request_id: 1,
            addr: "127.0.0.1:9000".to_owned(),
            incarnation: 7,
        });
        let bytes = encode(&announce);
        // Nothing decodable yet — more bytes may follow.
        assert_eq!(decode_capped(&bytes, 2), Ok(None));
        // Same for every truncation of the future frame.
        for cut in 0..bytes.len() {
            assert_eq!(decode_capped(&bytes[..cut], 2), Ok(None), "cut at {cut}");
        }
    }

    #[test]
    fn a_corrupt_future_frame_is_fatal() {
        let announce = Frame::Announce(AnnounceRequest {
            request_id: 1,
            addr: "127.0.0.1:9000".to_owned(),
            incarnation: 7,
        });
        let mut bytes = encode(&announce);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // break the checksum
        assert!(matches!(decode_capped(&bytes, 2), Err(DecodeError::UnsupportedVersion { got: 3 })));
    }

    /// Every v4 federation frame used by the compatibility tests below.
    fn v4_frames() -> Vec<Frame> {
        vec![
            Frame::PeerHello(PeerHelloRequest {
                request_id: 1,
                addr: "127.0.0.1:7000".to_owned(),
                incarnation: 7,
            }),
            Frame::PeerLoad(PeerLoadResponse {
                request_id: 1,
                healthy_nodes: 2,
                remaining_budget: 10.0,
                round_ms_p50: 1.5,
                epoch: 4,
            }),
            sample_forward(),
        ]
    }

    #[test]
    fn federation_frames_are_not_valid_before_v4() {
        for frame in v4_frames() {
            let tag = frame.frame_type();
            for version in [1, 2, 3] {
                let bytes = encode_raw_versioned(version, tag, &encode_payload(&frame));
                assert!(
                    matches!(decode_exact(&bytes), Err(DecodeError::UnknownFrameType { got }) if got == tag),
                    "a v{version} envelope must not carry frame type {tag:#04x}"
                );
            }
        }
    }

    /// The contract the tentpole rides on: v1–v3 peers step over every
    /// well-formed v4 federation frame checksum-safely and keep decoding
    /// the stream behind it.
    #[test]
    fn v1_to_v3_clients_skip_every_v4_frame_without_desync() {
        let snapshot = Frame::Snapshot(SnapshotRequest { request_id: 99 });
        for future in v4_frames() {
            let mut bytes = encode(&future);
            bytes.extend_from_slice(&encode(&snapshot));
            for cap in [1, 2, 3] {
                let (frame, consumed) = decode_capped(&bytes, cap)
                    .unwrap_or_else(|e| panic!("{} at cap {cap} must skip, got {e:?}", future.type_name()))
                    .expect("the known frame behind it must decode");
                assert_eq!(frame, snapshot, "{} at cap {cap}", future.type_name());
                assert_eq!(consumed, bytes.len(), "consumed must cover the skipped {}", future.type_name());
            }
        }
    }

    /// Any single-bit corruption of a v4 frame must never let a capped
    /// decoder skip it: with the envelope unverifiable the connection
    /// must drop (UnsupportedVersion), or — when the flip lands in the
    /// magic/version/reserved prefix — fail with that prefix's own error.
    /// What it must never do is decode or silently skip garbage.
    #[test]
    fn a_bit_flipped_v4_frame_is_never_silently_skipped() {
        for future in v4_frames() {
            let bytes = encode(&future);
            for bit in 0..bytes.len() * 8 {
                let mut corrupt = bytes.clone();
                corrupt[bit / 8] ^= 1 << (bit % 8);
                match decode_capped(&corrupt, 3) {
                    Err(_) => {}
                    Ok(None) => {
                        // A flip in the length prefix can make the frame
                        // look longer than the buffer: legitimately
                        // incomplete, never wrongly decoded.
                        let len = u32::from_le_bytes([corrupt[8], corrupt[9], corrupt[10], corrupt[11]]);
                        assert!(
                            HEADER_LEN + len as usize + TRAILER_LEN > corrupt.len(),
                            "{}: bit {bit} flipped but frame still complete and not an error",
                            future.type_name()
                        );
                    }
                    Ok(Some((frame, _))) => panic!(
                        "{}: bit {bit} corruption decoded as {}",
                        future.type_name(),
                        frame.type_name()
                    ),
                }
            }
        }
    }

    #[test]
    fn truncated_v4_frames_are_incomplete_not_fatal_at_every_cap() {
        for future in v4_frames() {
            let bytes = encode(&future);
            for cut in 0..bytes.len() {
                for cap in [1, 2, 3, VERSION] {
                    assert_eq!(
                        decode_capped(&bytes[..cut], cap),
                        Ok(None),
                        "{} cut at {cut}, cap {cap}",
                        future.type_name()
                    );
                }
            }
        }
    }

    #[test]
    fn a_corrupt_v4_frame_is_fatal_for_capped_decoders() {
        for future in v4_frames() {
            let mut bytes = encode(&future);
            let last = bytes.len() - 1;
            bytes[last] ^= 0x01; // break the checksum
            for cap in [1, 2, 3] {
                assert!(
                    matches!(decode_capped(&bytes, cap), Err(DecodeError::UnsupportedVersion { got: 4 })),
                    "{} at cap {cap}",
                    future.type_name()
                );
            }
        }
    }
}

//! Verifies the network-layer instruments end to end: after real reactor
//! and threaded traffic, the global registry holds the `net.conns` gauge
//! (back at zero once every connection closed), the `net.epoll.wakeups`
//! and `net.readiness.{read,write}` counters, and `net.async` events —
//! and under `--features offloadnn-telemetry/disabled` the same traffic
//! flows with none of those names registered.
//!
//! Run both ways (ci.sh does):
//!   cargo test -p offloadnn-net --test net_telemetry
//!   cargo test -p offloadnn-net --test net_telemetry --features offloadnn-telemetry/disabled

use offloadnn_core::scenario::small_scenario;
use offloadnn_net::{AnyServer, Client, ClientConfig, Frontend, NetConfig};
use offloadnn_serve::ServiceConfig;
use std::time::Duration;

fn drive_traffic(frontend: Frontend) {
    let scenario = small_scenario(4);
    let config = ServiceConfig {
        shards: 2,
        batch_max: 16,
        batch_window: Duration::from_micros(500),
        ..ServiceConfig::default()
    };
    let server =
        AnyServer::start(frontend, ("127.0.0.1", 0), NetConfig::default(), config, &scenario.instance)
            .expect("start server");
    let client = Client::connect(server.local_addr(), ClientConfig::default()).expect("connect");
    let pending: Vec<_> = scenario
        .instance
        .tasks
        .iter()
        .zip(scenario.instance.options.iter())
        .map(|(task, options)| client.submit(task.clone(), options.clone(), None).expect("submit"))
        .collect();
    for p in pending {
        p.wait_timeout(Duration::from_secs(30)).expect("verdict");
    }
    client.close();
    let report = server.shutdown();
    assert!(report.metrics.is_conserved(), "traffic must conserve regardless of telemetry build");
    assert_eq!(report.metrics.submitted, scenario.instance.tasks.len() as u64);
}

#[test]
fn net_instruments_follow_the_telemetry_build() {
    // Same traffic through both frontends; both feed the same instruments.
    drive_traffic(Frontend::Reactor);
    drive_traffic(Frontend::Threads);

    let snapshot = offloadnn_telemetry::global().snapshot();
    let counter = |name: &str| snapshot.counters.iter().find(|(n, _)| *n == name).map(|(_, v)| *v);
    let gauge = |name: &str| snapshot.gauges.iter().find(|(n, _)| *n == name).map(|(_, v)| *v);
    let net_events = snapshot.events.iter().filter(|e| e.target.starts_with("net.")).count();

    if offloadnn_telemetry::enabled() {
        // Every connection that opened also closed.
        assert_eq!(gauge("net.conns"), Some(0), "net.conns must register and return to zero");
        // The reactor ran, so its loops woke and saw read readiness.
        let wakeups = counter("net.epoll.wakeups").expect("net.epoll.wakeups registered");
        assert!(wakeups > 0, "event loops never woke");
        let reads = counter("net.readiness.read").expect("net.readiness.read registered");
        assert!(reads > 0, "no read readiness observed");
        // Write readiness only fires under backpressure; the counter must
        // still be registered so dashboards see it at zero.
        assert!(counter("net.readiness.write").is_some(), "net.readiness.write registered");
        assert!(net_events > 0, "network frontends emit lifecycle events");
    } else {
        for name in ["net.conns", "net.epoll.wakeups", "net.readiness.read", "net.readiness.write"] {
            assert!(
                counter(name).is_none() && gauge(name).is_none(),
                "{name} must not register in a telemetry-disabled build"
            );
        }
        assert_eq!(net_events, 0, "no events in a telemetry-disabled build");
    }
}

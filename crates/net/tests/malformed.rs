//! Malformed-input hardening: the decoder must reject truncated frames,
//! bad magic, version skew, hostile length prefixes and corrupted
//! checksums with *typed* errors — and must never panic, whatever the
//! bytes. The exhaustive mutation loops at the bottom are the teeth: a
//! panic anywhere in the decode path fails the test.

use offloadnn_core::scenario::small_scenario;
use offloadnn_core::task::TaskId;
use offloadnn_net::codec::{
    self, encode_raw, frame_type, AnnounceRequest, DepartRequest, DrainRequest, ErrorCode, ErrorResponse,
    Frame, LeaveRequest, MemberInfo, MemberState, MembershipDecision, MembershipResponse, MetricsResponse,
    OutcomeResponse, ScaleRequest, ScaleResponse, SnapshotRequest, SubmitRequest, HEADER_LEN, MAX_PAYLOAD,
};
use offloadnn_net::{decode, decode_exact, encode, DecodeError};
use offloadnn_serve::{HistogramSnapshot, MetricsSnapshot, Outcome, HISTOGRAM_BUCKETS};

/// One valid frame of every wire type.
fn valid_frames() -> Vec<Frame> {
    let s = small_scenario(3);
    let hist = HistogramSnapshot { buckets: [3; HISTOGRAM_BUCKETS], count: 7, sum_us: 191 };
    vec![
        Frame::Submit(SubmitRequest {
            request_id: 11,
            deadline_us: 2_000_000,
            task: s.instance.tasks[0].clone(),
            options: s.instance.options[0].clone(),
        }),
        Frame::Depart(DepartRequest { request_id: 12, task: TaskId(4) }),
        Frame::Snapshot(SnapshotRequest { request_id: 13 }),
        Frame::Drain(DrainRequest { request_id: 14 }),
        Frame::Outcome(OutcomeResponse {
            request_id: 15,
            outcome: Outcome::Admitted { admission: 0.5, rbs: 3.25, shard: 1 },
        }),
        Frame::Metrics(MetricsResponse {
            request_id: 16,
            is_final: false,
            metrics: MetricsSnapshot {
                submitted: 9,
                admitted: 4,
                rejected: 3,
                shed: 1,
                expired: 1,
                departed: 2,
                solver_rounds: 5,
                solver_errors: 0,
                reshards: 1,
                migrated: 3,
                generation: 1,
                peak_queue_depth: 6,
                peak_batch: 4,
                latency: hist,
                round_time: hist,
            },
        }),
        Frame::Error(ErrorResponse {
            request_id: 17,
            code: ErrorCode::NoOptions,
            message: "no candidate paths".to_owned(),
        }),
        Frame::Scale(ScaleRequest { request_id: 18, shards: 6 }),
        Frame::Scaled(ScaleResponse {
            request_id: 18,
            from_shards: 4,
            to_shards: 6,
            migrated: 9,
            generation: 1,
        }),
        Frame::Announce(AnnounceRequest {
            request_id: 19,
            addr: "10.0.0.7:4100".to_owned(),
            incarnation: 41,
        }),
        Frame::Leave(LeaveRequest { request_id: 20, addr: "10.0.0.7:4100".to_owned(), incarnation: 41 }),
        Frame::Membership(MembershipResponse {
            request_id: 21,
            decision: MembershipDecision::Accepted,
            members: vec![
                MemberInfo { addr: "10.0.0.7:4100".to_owned(), incarnation: 41, state: MemberState::Probing },
                MemberInfo { addr: "10.0.0.8:4100".to_owned(), incarnation: 0, state: MemberState::Healthy },
            ],
        }),
    ]
}

#[test]
fn truncated_frames_are_incomplete_not_errors() {
    for frame in valid_frames() {
        let bytes = encode(&frame);
        for cut in 0..bytes.len() {
            assert_eq!(
                decode(&bytes[..cut]),
                Ok(None),
                "{}-byte prefix of a {} frame must parse as incomplete",
                cut,
                frame.type_name()
            );
        }
        // decode_exact names the truncation instead.
        assert_eq!(decode_exact(&bytes[..bytes.len() - 1]), Err(DecodeError::Truncated { field: "frame" }));
    }
}

#[test]
fn bad_magic_is_rejected_even_on_short_input() {
    let mut bytes = encode(&valid_frames()[2]);
    bytes[0] = b'X';
    assert!(matches!(decode(&bytes), Err(DecodeError::BadMagic { .. })));
    // The prefix check fires before a whole header arrives: garbage
    // fails fast instead of waiting for a bogus frame to "complete".
    assert!(matches!(decode(&bytes[..3]), Err(DecodeError::BadMagic { .. })));
}

#[test]
fn wrong_version_is_rejected() {
    let mut bytes = encode(&valid_frames()[2]);
    bytes[4] = offloadnn_net::VERSION + 1;
    assert_eq!(decode(&bytes), Err(DecodeError::UnsupportedVersion { got: offloadnn_net::VERSION + 1 }));
}

#[test]
fn old_version_clients_skip_membership_frames_without_desync() {
    // A v1 or v2 client on a mixed stream — a v3 announce, then a frame
    // it knows — must skip the announce whole and surface the snapshot:
    // graceful forward compatibility, not a connection error.
    let announce =
        Frame::Announce(AnnounceRequest { request_id: 1, addr: "10.0.0.9:4100".to_owned(), incarnation: 7 });
    let tail = Frame::Snapshot(SnapshotRequest { request_id: 2 });
    let mut stream = encode(&announce);
    let announce_len = stream.len();
    stream.extend_from_slice(&encode(&tail));
    for cap in [1u8, 2] {
        assert_eq!(
            codec::decode_capped(&stream, cap),
            Ok(Some((tail.clone(), stream.len()))),
            "a v{cap} client must skip the v3 frame and decode the snapshot"
        );
        // A lone unknown frame is skipped silently: the stream is simply
        // "incomplete" until a known frame arrives.
        assert_eq!(codec::decode_capped(&stream[..announce_len], cap), Ok(None));
    }
    // A current client sees both frames in order.
    let (first, consumed) = codec::decode(&stream).unwrap().expect("announce decodes at v3");
    assert_eq!(first, announce);
    assert_eq!(consumed, announce_len);
}

#[test]
fn corrupt_future_frames_are_fatal_for_old_clients() {
    // The skip path only trusts a future frame's length if its checksum
    // verifies; corruption must surface as a typed error, not a silent
    // mis-skip.
    // Frames are stamped with the lowest version that knows their tag,
    // so the surfaced error names the corrupt frame's own version.
    let announce =
        Frame::Announce(AnnounceRequest { request_id: 1, addr: "10.0.0.9:4100".to_owned(), incarnation: 7 });
    let mut bytes = encode(&announce);
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    assert_eq!(codec::decode_capped(&bytes, 1), Err(DecodeError::UnsupportedVersion { got: 3 }));

    let hello = Frame::PeerHello(codec::PeerHelloRequest {
        request_id: 1,
        addr: "10.0.0.9:4100".to_owned(),
        incarnation: 7,
    });
    let mut bytes = encode(&hello);
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    assert_eq!(codec::decode_capped(&bytes, 3), Err(DecodeError::UnsupportedVersion { got: 4 }));
}

#[test]
fn nonzero_reserved_bytes_are_rejected() {
    let mut bytes = encode(&valid_frames()[3]);
    bytes[6] = 1;
    assert_eq!(decode(&bytes), Err(DecodeError::NonZeroReserved));
}

#[test]
fn unknown_frame_type_is_rejected() {
    let bytes = encode_raw(0x3F, &42u64.to_le_bytes());
    assert_eq!(decode(&bytes), Err(DecodeError::UnknownFrameType { got: 0x3F }));
}

#[test]
fn oversized_length_prefix_fails_before_any_allocation() {
    // A header claiming a payload past MAX_PAYLOAD must be rejected from
    // the header alone — no waiting for 4 GiB that will never arrive.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&codec::MAGIC);
    bytes.push(offloadnn_net::VERSION);
    bytes.push(frame_type::SNAPSHOT);
    bytes.extend_from_slice(&[0, 0]);
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(bytes.len(), HEADER_LEN);
    assert_eq!(decode(&bytes), Err(DecodeError::OversizedPayload { len: u32::MAX }));
    assert_eq!(
        decode(&[&bytes[..], &[0u8; 64][..]].concat()),
        Err(DecodeError::OversizedPayload { len: u32::MAX }),
        "more bytes arriving must not change the verdict"
    );
    // Right at the limit the length itself is legal (the frame is then
    // merely incomplete).
    bytes[8..12].copy_from_slice(&MAX_PAYLOAD.to_le_bytes());
    assert_eq!(decode(&bytes), Ok(None));
}

#[test]
fn corrupted_checksum_is_rejected() {
    let bytes = encode(&valid_frames()[0]);
    let mut corrupt = bytes.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x01;
    assert!(matches!(decode(&corrupt), Err(DecodeError::BadChecksum { .. })));

    // A payload flip is caught by the checksum too (FNV-1a steps are
    // bijective in the accumulator, so any single-bit change must alter
    // the final hash).
    let mut corrupt = bytes;
    corrupt[HEADER_LEN + 3] ^= 0x80;
    assert!(matches!(decode(&corrupt), Err(DecodeError::BadChecksum { .. })));
}

#[test]
fn payload_with_trailing_bytes_is_rejected() {
    // A snapshot payload is exactly the request id; pad it.
    let mut payload = 5u64.to_le_bytes().to_vec();
    payload.extend_from_slice(&[0xAB, 0xCD]);
    let bytes = encode_raw(frame_type::SNAPSHOT, &payload);
    assert_eq!(decode(&bytes), Err(DecodeError::TrailingBytes { extra: 2 }));
}

#[test]
fn every_single_bit_mutation_is_rejected_without_panicking() {
    // The conjunction of the header checks and the checksum means *any*
    // single-bit corruption of a valid frame must surface as a typed
    // error (or "incomplete" when the mutated length now claims more
    // bytes than present) — and decoding must never panic.
    for frame in valid_frames() {
        let bytes = encode(&frame);
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[i] ^= 1 << bit;
                let streamed = decode(&mutated);
                assert!(
                    matches!(streamed, Err(_) | Ok(None)),
                    "flipping bit {bit} of byte {i} in a {} frame must not yield a valid frame",
                    frame.type_name()
                );
                let _ = decode_exact(&mutated); // must not panic either
            }
        }
    }
}

#[test]
fn truncation_after_mutation_never_panics() {
    // Compound corruption: mutate one byte, then truncate anywhere.
    // Nothing to assert about the value — surviving the loop without a
    // panic is the property.
    for frame in valid_frames() {
        let bytes = encode(&frame);
        for i in (0..bytes.len()).step_by(7) {
            let mut mutated = bytes.clone();
            mutated[i] = mutated[i].wrapping_add(1);
            for cut in (0..mutated.len()).step_by(11) {
                let _ = decode(&mutated[..cut]);
                let _ = decode_exact(&mutated[..cut]);
            }
        }
    }
}

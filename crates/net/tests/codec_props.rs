//! Property tests for the wire codec: `decode(encode(f)) == f` for every
//! frame type over generated contents, and the envelope's length prefix
//! is respected for arbitrary payload sizes.
//!
//! The content strategies live in `common/` and are shared with the
//! reactor state-machine tests.

mod common;

use common::{
    ascii_string, byte, error_code, member_info, membership_decision, metrics, outcome, path_option, task,
};
use offloadnn_core::task::TaskId;
use offloadnn_net::codec::{
    self, AnnounceRequest, DepartRequest, DrainRequest, ErrorResponse, ForwardRequest, Frame, LeaveRequest,
    MembershipResponse, MetricsResponse, OutcomeResponse, PeerHelloRequest, PeerLoadResponse, ScaleRequest,
    ScaleResponse, SnapshotRequest, SubmitRequest, HEADER_LEN, TRAILER_LEN,
};
use proptest::collection::vec;
use proptest::prelude::*;

// ------------------------------------------------------------ round trips

fn assert_round_trip(frame: &Frame) -> Result<(), String> {
    let bytes = codec::encode(frame);
    match codec::decode_exact(&bytes) {
        Ok(decoded) if &decoded == frame => {}
        Ok(decoded) => return Err(format!("round trip changed the frame: {decoded:?} != {frame:?}")),
        Err(e) => return Err(format!("round trip failed to decode: {e}")),
    }
    // The streaming decoder agrees byte-for-byte.
    match codec::decode(&bytes) {
        Ok(Some((decoded, consumed))) if consumed == bytes.len() && &decoded == frame => Ok(()),
        other => Err(format!("streaming decode disagreed: {other:?}")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    fn submit_frames_round_trip(
        request_id in 0u64..u64::MAX,
        deadline_us in 0u64..10_000_000_000,
        task in task(),
        options in vec(path_option(), 0..5),
    ) {
        let frame = Frame::Submit(SubmitRequest { request_id, deadline_us, task, options });
        assert_round_trip(&frame)?;
    }

    fn depart_frames_round_trip(request_id in 0u64..u64::MAX, task in 0u32..u32::MAX) {
        let frame = Frame::Depart(DepartRequest { request_id, task: TaskId(task) });
        assert_round_trip(&frame)?;
    }

    fn snapshot_and_drain_frames_round_trip(request_id in 0u64..u64::MAX) {
        let frame = Frame::Snapshot(SnapshotRequest { request_id });
        assert_round_trip(&frame)?;
        let frame = Frame::Drain(DrainRequest { request_id });
        assert_round_trip(&frame)?;
    }

    fn outcome_frames_round_trip(request_id in 0u64..u64::MAX, outcome in outcome()) {
        let frame = Frame::Outcome(OutcomeResponse { request_id, outcome });
        assert_round_trip(&frame)?;
    }

    fn metrics_frames_round_trip(
        request_id in 0u64..u64::MAX,
        is_final in proptest::bool::ANY,
        metrics in metrics(),
    ) {
        let frame = Frame::Metrics(MetricsResponse { request_id, is_final, metrics });
        assert_round_trip(&frame)?;
    }

    fn error_frames_round_trip(
        request_id in 0u64..u64::MAX,
        code in error_code(),
        message in ascii_string(80),
    ) {
        let frame = Frame::Error(ErrorResponse { request_id, code, message });
        assert_round_trip(&frame)?;
    }

    fn scale_frames_round_trip(request_id in 0u64..u64::MAX, shards in 1u32..1024) {
        let frame = Frame::Scale(ScaleRequest { request_id, shards });
        assert_round_trip(&frame)?;
    }

    fn scaled_frames_round_trip(
        request_id in 0u64..u64::MAX,
        from_shards in 1u32..1024,
        to_shards in 1u32..1024,
        migrated in 0u64..1 << 40,
        generation in 0u64..1 << 30,
    ) {
        let frame = Frame::Scaled(ScaleResponse { request_id, from_shards, to_shards, migrated, generation });
        assert_round_trip(&frame)?;
    }

    fn announce_and_leave_frames_round_trip(
        request_id in 0u64..u64::MAX,
        addr in ascii_string(40),
        incarnation in 0u64..u64::MAX,
    ) {
        let frame = Frame::Announce(AnnounceRequest {
            request_id,
            addr: addr.clone(),
            incarnation,
        });
        assert_round_trip(&frame)?;
        let frame = Frame::Leave(LeaveRequest { request_id, addr, incarnation });
        assert_round_trip(&frame)?;
    }

    fn membership_frames_round_trip(
        request_id in 0u64..u64::MAX,
        decision in membership_decision(),
        members in vec(member_info(), 0..8),
    ) {
        let frame = Frame::Membership(MembershipResponse { request_id, decision, members });
        assert_round_trip(&frame)?;
    }

    fn peer_hello_frames_round_trip(
        request_id in 0u64..u64::MAX,
        addr in ascii_string(40),
        incarnation in 0u64..u64::MAX,
    ) {
        let frame = Frame::PeerHello(PeerHelloRequest { request_id, addr, incarnation });
        assert_round_trip(&frame)?;
    }

    fn peer_load_frames_round_trip(
        request_id in 0u64..u64::MAX,
        healthy_nodes in 0u32..1024,
        remaining_budget in 0.0f64..1e6,
        round_ms_p50 in 0.0f64..1e4,
        epoch in 0u64..u64::MAX,
    ) {
        let frame = Frame::PeerLoad(PeerLoadResponse {
            request_id,
            healthy_nodes,
            remaining_budget,
            round_ms_p50,
            epoch,
        });
        assert_round_trip(&frame)?;
    }

    fn forward_frames_round_trip(
        request_id in 0u64..u64::MAX,
        deadline_us in 0u64..10_000_000_000,
        hops in 0u8..4,
        origin in ascii_string(40),
        tried in vec(ascii_string(40), 0..4),
        task in task(),
        options in vec(path_option(), 0..4),
    ) {
        let frame = Frame::Forward(ForwardRequest {
            request_id,
            deadline_us,
            hops,
            origin,
            tried,
            task,
            options,
        });
        assert_round_trip(&frame)?;
    }

    /// Forward compatibility: a v1 or v2 client receiving any v3
    /// membership frame followed by a frame it understands skips the
    /// unknown one and decodes the next without desync — the skip
    /// consumes exactly the unknown frame's bytes.
    fn old_clients_skip_membership_frames_without_desync(
        cap in 1u8..3,
        addr in ascii_string(40),
        incarnation in 0u64..u64::MAX,
        members in vec(member_info(), 0..6),
    ) {
        for future in [
            Frame::Announce(AnnounceRequest { request_id: 1, addr: addr.clone(), incarnation }),
            Frame::Leave(LeaveRequest { request_id: 2, addr: addr.clone(), incarnation }),
            Frame::Membership(MembershipResponse {
                request_id: 3,
                decision: codec::MembershipDecision::Accepted,
                members: members.clone(),
            }),
        ] {
            let mut stream = codec::encode(&future);
            let tail = Frame::Snapshot(SnapshotRequest { request_id: 9 });
            stream.extend_from_slice(&codec::encode(&tail));
            match codec::decode_capped(&stream, cap) {
                Ok(Some((decoded, consumed))) => {
                    prop_assert_eq!(decoded, tail, "old client must surface the next known frame");
                    prop_assert_eq!(consumed, stream.len(), "skip must consume the exact frame length");
                }
                other => prop_assert!(false, "old client desynced: {:?}", other),
            }
        }
    }

    /// The same guarantee one version later: a v1, v2 or v3 client
    /// receiving any v4 federation frame (`PeerHello`, `Forward`,
    /// `PeerLoad`) skips it checksum-safely and decodes the next known
    /// frame without desync.
    fn old_clients_skip_federation_frames_without_desync(
        cap in 1u8..4,
        addr in ascii_string(40),
        incarnation in 0u64..u64::MAX,
        task in task(),
        tried in vec(ascii_string(40), 0..4),
    ) {
        for future in [
            Frame::PeerHello(PeerHelloRequest { request_id: 1, addr: addr.clone(), incarnation }),
            Frame::Forward(ForwardRequest {
                request_id: 2,
                deadline_us: 5_000_000,
                hops: 1,
                origin: addr.clone(),
                tried: tried.clone(),
                task: task.clone(),
                options: Vec::new(),
            }),
            Frame::PeerLoad(PeerLoadResponse {
                request_id: 3,
                healthy_nodes: 7,
                remaining_budget: 12.5,
                round_ms_p50: 3.0,
                epoch: incarnation,
            }),
        ] {
            let mut stream = codec::encode(&future);
            let tail = Frame::Snapshot(SnapshotRequest { request_id: 9 });
            stream.extend_from_slice(&codec::encode(&tail));
            match codec::decode_capped(&stream, cap) {
                Ok(Some((decoded, consumed))) => {
                    prop_assert_eq!(decoded, tail, "old client must surface the next known frame");
                    prop_assert_eq!(consumed, stream.len(), "skip must consume the exact frame length");
                }
                other => prop_assert!(false, "old client desynced: {:?}", other),
            }
        }
    }

    // -------------------------------------------------- envelope bounds

    /// For arbitrary payload bytes under any frame-type tag, the envelope
    /// length prefix is exact: the wire size is header + payload +
    /// trailer, and a successful decode consumes exactly that. Malformed
    /// payloads get typed errors, never panics.
    fn length_prefix_respected_for_arbitrary_payloads(
        ftype in byte(),
        payload in vec(byte(), 0..600),
    ) {
        let bytes = codec::encode_raw(ftype, &payload);
        prop_assert_eq!(bytes.len(), HEADER_LEN + payload.len() + TRAILER_LEN);
        match codec::decode(&bytes) {
            Ok(Some((_, consumed))) => prop_assert_eq!(consumed, bytes.len()),
            Ok(None) => prop_assert!(false, "complete frame reported as incomplete"),
            Err(_) => {} // typed rejection of a nonsense payload is fine
        }
    }

    /// Arbitrary garbage never panics the decoder, streaming or exact.
    fn arbitrary_bytes_never_panic(bytes in vec(byte(), 0..256)) {
        let _ = codec::decode(&bytes);
        let _ = codec::decode_exact(&bytes);
    }

    /// Every prefix of a valid frame is "incomplete", not an error: a
    /// streaming reader can buffer byte-by-byte without ever seeing a
    /// spurious failure.
    fn valid_frame_prefixes_are_incomplete(task in task(), cut_seed in 0usize..usize::MAX) {
        let frame = Frame::Submit(SubmitRequest {
            request_id: 3,
            deadline_us: 0,
            task,
            options: Vec::new(),
        });
        let bytes = codec::encode(&frame);
        let cut = cut_seed % bytes.len();
        prop_assert_eq!(codec::decode(&bytes[..cut]), Ok(None));
    }
}

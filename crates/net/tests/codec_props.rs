//! Property tests for the wire codec: `decode(encode(f)) == f` for every
//! frame type over generated contents, and the envelope's length prefix
//! is respected for arbitrary payload sizes.

use offloadnn_core::instance::PathOption;
use offloadnn_core::task::{QualityLevel, Task, TaskId};
use offloadnn_dnn::block::{BlockId, GroupId, ModelId};
use offloadnn_dnn::repository::DnnPath;
use offloadnn_dnn::{Config, PathConfig};
use offloadnn_net::codec::{
    self, DepartRequest, DrainRequest, ErrorCode, ErrorResponse, Frame, MetricsResponse, OutcomeResponse,
    ScaleRequest, ScaleResponse, SnapshotRequest, SubmitRequest, HEADER_LEN, TRAILER_LEN,
};
use offloadnn_radio::SnrDb;
use offloadnn_serve::{HistogramSnapshot, MetricsSnapshot, Outcome, HISTOGRAM_BUCKETS};
use proptest::collection::vec;
use proptest::prelude::*;

// ------------------------------------------------------------ strategies

fn byte() -> impl Strategy<Value = u8> {
    (0u16..256).prop_map(|b| b as u8)
}

fn ascii_string(max_len: usize) -> impl Strategy<Value = String> {
    vec(32u8..127, 0..max_len).prop_map(|b| String::from_utf8(b).expect("printable ascii"))
}

fn quality() -> impl Strategy<Value = QualityLevel> {
    (0.0f64..1.0, 1.0f64..1e7).prop_map(|(quality, bits)| QualityLevel { quality, bits })
}

fn task() -> impl Strategy<Value = Task> {
    (
        0u32..1_000_000,
        ascii_string(24),
        0u32..64,
        0.0f64..10.0,
        0.0f64..1e4,
        0.0f64..1.0,
        1e-3f64..10.0,
        -20.0f64..40.0,
        vec(quality(), 0..6),
        0.0f64..5.0,
    )
        .prop_map(
            |(
                id,
                name,
                group,
                priority,
                request_rate,
                min_accuracy,
                max_latency,
                snr,
                qualities,
                difficulty,
            )| Task {
                id: TaskId(id),
                name,
                group: GroupId(group),
                priority,
                request_rate,
                min_accuracy,
                max_latency,
                snr: SnrDb(snr),
                qualities,
                difficulty,
            },
        )
}

fn path_option() -> impl Strategy<Value = PathOption> {
    (
        0u32..32,
        0u32..64,
        0u8..5,
        proptest::bool::ANY,
        vec(0u32..4096, 0..12),
        quality(),
        0.0f64..1.0,
        0.0f64..0.5,
        0.0f64..100.0,
        ascii_string(16),
    )
        .prop_map(
            |(
                model,
                group,
                cfg,
                pruned,
                blocks,
                quality,
                accuracy,
                proc_seconds,
                training_seconds,
                label,
            )| {
                let config = match cfg {
                    0 => Config::A,
                    1 => Config::B,
                    2 => Config::C,
                    3 => Config::D,
                    _ => Config::E,
                };
                PathOption {
                    path: DnnPath {
                        model: ModelId(model),
                        group: GroupId(group),
                        config: PathConfig { config, pruned },
                        blocks: blocks.into_iter().map(BlockId).collect(),
                    },
                    quality,
                    accuracy,
                    proc_seconds,
                    training_seconds,
                    label,
                }
            },
        )
}

fn outcome() -> impl Strategy<Value = Outcome> {
    (0u8..4, 1e-3f64..1.0, 0.0f64..100.0, 0usize..64).prop_map(|(tag, admission, rbs, shard)| match tag {
        0 => Outcome::Admitted { admission, rbs, shard },
        1 => Outcome::Rejected { shard },
        2 => Outcome::Shed { shard },
        _ => Outcome::Expired { shard },
    })
}

fn histogram() -> impl Strategy<Value = HistogramSnapshot> {
    (vec(0u64..1_000_000, HISTOGRAM_BUCKETS), 0u64..1_000_000, 0u64..u64::MAX).prop_map(
        |(counts, count, sum_us)| {
            let mut buckets = [0u64; HISTOGRAM_BUCKETS];
            buckets.copy_from_slice(&counts);
            HistogramSnapshot { buckets, count, sum_us }
        },
    )
}

fn metrics() -> impl Strategy<Value = MetricsSnapshot> {
    (
        (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
        (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..4096, 0u64..4096),
        (0u64..1 << 20, 0u64..1 << 30, 0u64..1 << 20),
        histogram(),
        histogram(),
    )
        .prop_map(
            |(
                (submitted, admitted, rejected, shed, expired),
                (departed, solver_rounds, solver_errors, peak_queue_depth, peak_batch),
                (reshards, migrated, generation),
                latency,
                round_time,
            )| {
                MetricsSnapshot {
                    submitted,
                    admitted,
                    rejected,
                    shed,
                    expired,
                    departed,
                    solver_rounds,
                    solver_errors,
                    reshards,
                    migrated,
                    generation,
                    peak_queue_depth,
                    peak_batch,
                    latency,
                    round_time,
                }
            },
        )
}

fn error_code() -> impl Strategy<Value = ErrorCode> {
    (0u8..6).prop_map(|tag| match tag {
        0 => ErrorCode::Draining,
        1 => ErrorCode::NoOptions,
        2 => ErrorCode::Malformed,
        3 => ErrorCode::TooManyConnections,
        4 => ErrorCode::Internal,
        _ => ErrorCode::InvalidScale,
    })
}

// ------------------------------------------------------------ round trips

fn assert_round_trip(frame: &Frame) -> Result<(), String> {
    let bytes = codec::encode(frame);
    match codec::decode_exact(&bytes) {
        Ok(decoded) if &decoded == frame => {}
        Ok(decoded) => return Err(format!("round trip changed the frame: {decoded:?} != {frame:?}")),
        Err(e) => return Err(format!("round trip failed to decode: {e}")),
    }
    // The streaming decoder agrees byte-for-byte.
    match codec::decode(&bytes) {
        Ok(Some((decoded, consumed))) if consumed == bytes.len() && &decoded == frame => Ok(()),
        other => Err(format!("streaming decode disagreed: {other:?}")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    fn submit_frames_round_trip(
        request_id in 0u64..u64::MAX,
        deadline_us in 0u64..10_000_000_000,
        task in task(),
        options in vec(path_option(), 0..5),
    ) {
        let frame = Frame::Submit(SubmitRequest { request_id, deadline_us, task, options });
        assert_round_trip(&frame)?;
    }

    fn depart_frames_round_trip(request_id in 0u64..u64::MAX, task in 0u32..u32::MAX) {
        let frame = Frame::Depart(DepartRequest { request_id, task: TaskId(task) });
        assert_round_trip(&frame)?;
    }

    fn snapshot_and_drain_frames_round_trip(request_id in 0u64..u64::MAX) {
        let frame = Frame::Snapshot(SnapshotRequest { request_id });
        assert_round_trip(&frame)?;
        let frame = Frame::Drain(DrainRequest { request_id });
        assert_round_trip(&frame)?;
    }

    fn outcome_frames_round_trip(request_id in 0u64..u64::MAX, outcome in outcome()) {
        let frame = Frame::Outcome(OutcomeResponse { request_id, outcome });
        assert_round_trip(&frame)?;
    }

    fn metrics_frames_round_trip(
        request_id in 0u64..u64::MAX,
        is_final in proptest::bool::ANY,
        metrics in metrics(),
    ) {
        let frame = Frame::Metrics(MetricsResponse { request_id, is_final, metrics });
        assert_round_trip(&frame)?;
    }

    fn error_frames_round_trip(
        request_id in 0u64..u64::MAX,
        code in error_code(),
        message in ascii_string(80),
    ) {
        let frame = Frame::Error(ErrorResponse { request_id, code, message });
        assert_round_trip(&frame)?;
    }

    fn scale_frames_round_trip(request_id in 0u64..u64::MAX, shards in 1u32..1024) {
        let frame = Frame::Scale(ScaleRequest { request_id, shards });
        assert_round_trip(&frame)?;
    }

    fn scaled_frames_round_trip(
        request_id in 0u64..u64::MAX,
        from_shards in 1u32..1024,
        to_shards in 1u32..1024,
        migrated in 0u64..1 << 40,
        generation in 0u64..1 << 30,
    ) {
        let frame = Frame::Scaled(ScaleResponse { request_id, from_shards, to_shards, migrated, generation });
        assert_round_trip(&frame)?;
    }

    // -------------------------------------------------- envelope bounds

    /// For arbitrary payload bytes under any frame-type tag, the envelope
    /// length prefix is exact: the wire size is header + payload +
    /// trailer, and a successful decode consumes exactly that. Malformed
    /// payloads get typed errors, never panics.
    fn length_prefix_respected_for_arbitrary_payloads(
        ftype in byte(),
        payload in vec(byte(), 0..600),
    ) {
        let bytes = codec::encode_raw(ftype, &payload);
        prop_assert_eq!(bytes.len(), HEADER_LEN + payload.len() + TRAILER_LEN);
        match codec::decode(&bytes) {
            Ok(Some((_, consumed))) => prop_assert_eq!(consumed, bytes.len()),
            Ok(None) => prop_assert!(false, "complete frame reported as incomplete"),
            Err(_) => {} // typed rejection of a nonsense payload is fine
        }
    }

    /// Arbitrary garbage never panics the decoder, streaming or exact.
    fn arbitrary_bytes_never_panic(bytes in vec(byte(), 0..256)) {
        let _ = codec::decode(&bytes);
        let _ = codec::decode_exact(&bytes);
    }

    /// Every prefix of a valid frame is "incomplete", not an error: a
    /// streaming reader can buffer byte-by-byte without ever seeing a
    /// spurious failure.
    fn valid_frame_prefixes_are_incomplete(task in task(), cut_seed in 0usize..usize::MAX) {
        let frame = Frame::Submit(SubmitRequest {
            request_id: 3,
            deadline_us: 0,
            task,
            options: Vec::new(),
        });
        let bytes = codec::encode(&frame);
        let cut = cut_seed % bytes.len();
        prop_assert_eq!(codec::decode(&bytes[..cut]), Ok(None));
    }
}

//! Loopback integration tests: a real server on an ephemeral port,
//! driven by real [`Client`]s over TCP.
//!
//! Every scenario is parameterized over the [`Frontend`] — the threaded
//! [`offloadnn_net::NetServer`] and the epoll
//! [`offloadnn_net::AsyncServer`] must pass the identical assertions,
//! which is the executable definition of their feature parity.
//!
//! The load-bearing assertions are the conservation invariant
//! (`submitted = admitted + rejected + shed + expired`, end-to-end
//! through the wire) and the drain guarantee (every in-flight verdict is
//! flushed to its client before the connection closes).

use offloadnn_core::scenario::small_scenario;
use offloadnn_core::task::TaskId;
use offloadnn_net::codec::ErrorCode;
use offloadnn_net::{AnyServer, Client, ClientConfig, Frontend, NetConfig, NetError};
use offloadnn_serve::{Outcome, ServiceConfig};
use std::time::Duration;

/// A service tuned for debug-mode CI: tiny batches, short windows.
fn quick_service() -> ServiceConfig {
    ServiceConfig {
        shards: 2,
        batch_max: 16,
        batch_window: Duration::from_micros(500),
        ..ServiceConfig::default()
    }
}

fn start_server(
    frontend: Frontend,
    config: ServiceConfig,
) -> (AnyServer, Vec<(offloadnn_core::task::Task, Vec<offloadnn_core::instance::PathOption>)>) {
    let scenario = small_scenario(4);
    let protos: Vec<_> =
        scenario.instance.tasks.iter().cloned().zip(scenario.instance.options.iter().cloned()).collect();
    let server =
        AnyServer::start(frontend, ("127.0.0.1", 0), NetConfig::default(), config, &scenario.instance)
            .expect("start server");
    (server, protos)
}

/// Verdicts observed through the wire by one client.
#[derive(Debug, Default, Clone, Copy)]
struct Tally {
    admitted: u64,
    rejected: u64,
    shed: u64,
    expired: u64,
    errored: u64,
}

impl Tally {
    fn outcomes(&self) -> u64 {
        self.admitted + self.rejected + self.shed + self.expired
    }

    fn absorb(&mut self, verdict: Result<Outcome, NetError>) {
        match verdict {
            Ok(Outcome::Admitted { .. }) => self.admitted += 1,
            Ok(Outcome::Rejected { .. }) => self.rejected += 1,
            Ok(Outcome::Shed { .. }) => self.shed += 1,
            Ok(Outcome::Expired { .. }) => self.expired += 1,
            Err(_) => self.errored += 1,
        }
    }
}

/// N client threads drive a mixed workload (pipelined submits, periodic
/// departures, interleaved metrics snapshots) and every offered request
/// is accounted for exactly once — on the wire and in the server's own
/// counters, class by class.
fn run_mixed_workload(frontend: Frontend) {
    const CLIENTS: usize = 4;
    const PER_CLIENT: u64 = 120;

    let (server, protos) = start_server(frontend, quick_service());
    let addr = server.local_addr();

    let mut total = Tally::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|idx| {
                let protos = &protos;
                scope.spawn(move || {
                    let client = Client::connect(addr, ClientConfig::default()).expect("connect");
                    let mut tally = Tally::default();
                    let mut pending = std::collections::VecDeque::new();
                    let mut admitted_ids: Vec<TaskId> = Vec::new();
                    for i in 0..PER_CLIENT {
                        let proto = &protos[(i as usize + idx) % protos.len()];
                        let mut task = proto.0.clone();
                        task.id = TaskId(idx as u32 * 1_000_000 + i as u32);
                        match client.submit(task, proto.1.clone(), None) {
                            Ok(p) => pending.push_back(p),
                            Err(_) => tally.errored += 1,
                        }
                        // Keep a bounded pipeline and a mixed frame stream.
                        if pending.len() >= 32 {
                            let p = pending.pop_front().expect("non-empty");
                            let task = p.task;
                            let verdict = p.wait_timeout(Duration::from_secs(20));
                            if matches!(verdict, Ok(Outcome::Admitted { .. })) {
                                admitted_ids.push(task);
                            }
                            tally.absorb(verdict);
                        }
                        if i % 17 == 16 {
                            if let Some(id) = admitted_ids.pop() {
                                client.depart(id).expect("depart");
                            }
                        }
                        if i % 40 == 39 {
                            let snap = client.snapshot().expect("snapshot");
                            assert!(snap.submitted >= snap.admitted, "snapshot is internally sane");
                        }
                    }
                    for p in pending {
                        tally.absorb(p.wait_timeout(Duration::from_secs(20)));
                    }
                    client.close();
                    tally
                })
            })
            .collect();
        for h in handles {
            let t = h.join().expect("client thread");
            total.admitted += t.admitted;
            total.rejected += t.rejected;
            total.shed += t.shed;
            total.expired += t.expired;
            total.errored += t.errored;
        }
    });

    let report = server.shutdown();
    let m = &report.metrics;
    let offered = CLIENTS as u64 * PER_CLIENT;

    assert_eq!(total.errored, 0, "loopback run must not drop a single verdict");
    assert_eq!(total.outcomes(), offered, "every offered request resolves exactly once: {total:?}");
    assert!(m.is_conserved(), "server conservation violated: {m:?}");
    // The wire and the server agree class by class.
    assert_eq!(m.submitted, offered);
    assert_eq!(m.admitted, total.admitted);
    assert_eq!(m.rejected, total.rejected);
    assert_eq!(m.shed, total.shed);
    assert_eq!(m.expired, total.expired);
}

#[test]
fn mixed_workload_conserves_every_request() {
    run_mixed_workload(Frontend::Threads);
}

#[test]
fn mixed_workload_conserves_every_request_reactor() {
    run_mixed_workload(Frontend::Reactor);
}

/// Drain delivers every in-flight outcome: requests pipelined *before*
/// the drain (and still queued behind a slow batch window when it lands)
/// all resolve to real verdicts, and the drain acknowledgement carries a
/// post-flush snapshot.
fn run_drain_flush(frontend: Frontend) {
    const INFLIGHT: u64 = 24;

    // A slow solver cadence so the pipelined submits are still queued
    // when the drain lands.
    let (server, protos) = start_server(
        frontend,
        ServiceConfig {
            shards: 2,
            batch_max: 64,
            batch_window: Duration::from_millis(150),
            ..ServiceConfig::default()
        },
    );
    let addr = server.local_addr();

    let submitter = Client::connect(addr, ClientConfig::default()).expect("connect submitter");
    let mut pending = Vec::new();
    for i in 0..INFLIGHT {
        let proto = &protos[i as usize % protos.len()];
        let mut task = proto.0.clone();
        task.id = TaskId(i as u32);
        pending.push(submitter.submit(task, proto.1.clone(), None).expect("submit"));
    }

    // Wait for the server to ingest every submit (the drain guarantee
    // covers requests already inside the service; a submit still in the
    // socket buffer when the fence lands is refused as Draining instead).
    let ingest_deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.metrics().submitted < INFLIGHT {
        assert!(std::time::Instant::now() < ingest_deadline, "server never ingested all submits");
        std::thread::sleep(Duration::from_millis(2));
    }

    // A second connection asks for the drain.
    let controller = Client::connect(addr, ClientConfig::default()).expect("connect controller");
    let final_metrics = controller.drain().expect("drain acknowledgement");
    assert!(server.is_draining());

    // Every verdict owed to the submitter arrives despite the drain.
    let mut tally = Tally::default();
    for p in pending {
        tally.absorb(p.wait_timeout(Duration::from_secs(20)));
    }
    assert_eq!(tally.errored, 0, "drain must not strand an in-flight verdict: {tally:?}");
    assert_eq!(tally.outcomes(), INFLIGHT);

    // New submits are refused with a typed Draining error.
    let proto = &protos[0];
    let mut task = proto.0.clone();
    task.id = TaskId(9_999);
    let refused = submitter
        .submit(task, proto.1.clone(), None)
        .expect("submit frame still writable")
        .wait_timeout(Duration::from_secs(20));
    match refused {
        Err(NetError::Server(e)) => assert_eq!(e.code, ErrorCode::Draining),
        other => panic!("post-drain submit must be refused as Draining, got {other:?}"),
    }

    assert!(final_metrics.submitted <= INFLIGHT, "drain snapshot is from this run");
    let report = server.shutdown();
    assert!(report.metrics.is_conserved(), "post-drain conservation: {:?}", report.metrics);
}

#[test]
fn drain_flushes_every_inflight_outcome() {
    run_drain_flush(Frontend::Threads);
}

#[test]
fn drain_flushes_every_inflight_outcome_reactor() {
    run_drain_flush(Frontend::Reactor);
}

/// The client-shipped deadline is enforced server-side: a budget far
/// tighter than the batch window expires the request instead of waiting
/// for a solver round. (The tighter of the client budget and the
/// service's own admission deadline wins.)
fn run_deadline_propagation(frontend: Frontend) {
    let (server, protos) = start_server(
        frontend,
        ServiceConfig {
            shards: 1,
            batch_max: 64,
            batch_window: Duration::from_millis(100),
            ..ServiceConfig::default()
        },
    );
    let addr = server.local_addr();
    let client = Client::connect(addr, ClientConfig::default()).expect("connect");

    let mut expired = 0u64;
    for i in 0..8u32 {
        let proto = &protos[i as usize % protos.len()];
        let mut task = proto.0.clone();
        task.id = TaskId(i);
        // 1 µs budget: expired by the time the 100 ms batch window fires.
        let p = client.submit(task, proto.1.clone(), Some(Duration::from_micros(1))).expect("submit");
        if matches!(p.wait_timeout(Duration::from_secs(20)), Ok(Outcome::Expired { .. })) {
            expired += 1;
        }
    }
    assert!(expired > 0, "a 1 µs client deadline must expire behind a 100 ms batch window");

    client.close();
    let report = server.shutdown();
    assert!(report.metrics.expired >= expired);
    assert!(report.metrics.is_conserved());
}

#[test]
fn client_deadline_propagates_to_the_server() {
    run_deadline_propagation(Frontend::Threads);
}

#[test]
fn client_deadline_propagates_to_the_server_reactor() {
    run_deadline_propagation(Frontend::Reactor);
}

/// Live resharding under pipelined load, end to end through the wire: a
/// client streams submits while a controller connection reshapes the
/// fleet twice (4 → 6 → 3) with `Scale` frames. Zero verdicts are lost,
/// the final snapshot conserves, and the server's reshard counters match
/// the acknowledged `Scaled` responses.
fn run_reshard_under_load(frontend: Frontend) {
    const REQUESTS: u64 = 360;

    let (server, protos) = start_server(
        frontend,
        ServiceConfig {
            shards: 4,
            batch_max: 16,
            batch_window: Duration::from_micros(500),
            ..ServiceConfig::default()
        },
    );
    let addr = server.local_addr();

    let client = Client::connect(addr, ClientConfig::default()).expect("connect submitter");
    let controller = Client::connect(addr, ClientConfig::default()).expect("connect controller");

    let mut tally = Tally::default();
    let mut pending = std::collections::VecDeque::new();
    let mut admitted_ids: Vec<TaskId> = Vec::new();
    let mut migrated_total = 0u64;
    for i in 0..REQUESTS {
        // Reshard mid-stream, with verdicts outstanding in the pipeline
        // both times: grow at a third, shrink below start at two thirds.
        if i == REQUESTS / 3 {
            let resp = controller.scale_to(6).expect("scale 4 -> 6");
            assert_eq!((resp.from_shards, resp.to_shards, resp.generation), (4, 6, 1));
            migrated_total += resp.migrated;
        }
        if i == 2 * REQUESTS / 3 {
            let resp = controller.scale_to(3).expect("scale 6 -> 3");
            assert_eq!((resp.from_shards, resp.to_shards, resp.generation), (6, 3, 2));
            migrated_total += resp.migrated;
        }

        let proto = &protos[i as usize % protos.len()];
        let mut task = proto.0.clone();
        task.id = TaskId(i as u32);
        match client.submit(task, proto.1.clone(), None) {
            Ok(p) => pending.push_back(p),
            Err(_) => tally.errored += 1,
        }
        if pending.len() >= 48 {
            let p = pending.pop_front().expect("non-empty");
            let task = p.task;
            let verdict = p.wait_timeout(Duration::from_secs(20));
            if matches!(verdict, Ok(Outcome::Admitted { .. })) {
                admitted_ids.push(task);
            }
            tally.absorb(verdict);
        }
        // Departures keep flowing across ring generations: after a
        // reshard these route to the task's *new* owner (or are orphan-
        // buffered until its migration lands).
        if i % 11 == 10 {
            if let Some(id) = admitted_ids.pop() {
                client.depart(id).expect("depart");
            }
        }
    }
    for p in pending {
        tally.absorb(p.wait_timeout(Duration::from_secs(20)));
    }

    // An invalid scale target is refused with a typed error, without
    // disturbing the stream.
    match controller.scale_to(0) {
        Err(NetError::Server(e)) => assert_eq!(e.code, ErrorCode::InvalidScale),
        other => panic!("scale_to(0) must be refused InvalidScale, got {other:?}"),
    }

    client.close();
    controller.close();
    let report = server.shutdown();
    let m = &report.metrics;

    assert_eq!(tally.errored, 0, "a live reshard must not lose a single verdict: {tally:?}");
    assert_eq!(tally.outcomes(), REQUESTS, "every request resolves exactly once: {tally:?}");
    assert!(m.is_conserved(), "server conservation violated: {m:?}");
    assert_eq!(m.submitted, REQUESTS);
    assert_eq!(m.admitted, tally.admitted);
    assert_eq!(m.rejected, tally.rejected);
    assert_eq!(m.shed, tally.shed);
    assert_eq!(m.expired, tally.expired);
    assert_eq!(m.reshards, 2, "both topology changes counted");
    assert_eq!(m.generation, 2);
    assert_eq!(m.migrated, migrated_total, "server-counted migrations match the Scaled acks");
}

#[test]
fn reshard_under_pipelined_load_conserves() {
    run_reshard_under_load(Frontend::Threads);
}

#[test]
fn reshard_under_pipelined_load_conserves_reactor() {
    run_reshard_under_load(Frontend::Reactor);
}

/// Dialing a dead address retries with backoff and then fails with a
/// typed error instead of hanging or panicking. (Client-side only — no
/// frontend involved.)
#[test]
fn dial_backoff_gives_up_with_a_typed_error() {
    // Bind-then-drop guarantees a port with no listener behind it.
    let dead_addr = {
        let probe = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("probe bind");
        probe.local_addr().expect("probe addr")
    };
    let config = ClientConfig {
        connect_timeout: Duration::from_millis(200),
        connect_attempts: 3,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(20),
        ..ClientConfig::default()
    };
    let started = std::time::Instant::now();
    match Client::connect(dead_addr, config) {
        Err(NetError::Disconnected(msg)) => {
            assert!(msg.contains("3 attempt(s)"), "error names the attempt budget: {msg}");
        }
        other => panic!("dialing a dead port must fail Disconnected, got {other:?}"),
    }
    // Two jittered backoff sleeps happened, each at least backoff_base.
    assert!(started.elapsed() >= Duration::from_millis(10), "backoff sleeps actually ran");
}

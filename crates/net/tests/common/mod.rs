//! Proptest strategies for wire-protocol contents, shared by the codec
//! round-trip properties (`codec_props.rs`) and the reactor state-machine
//! tests (`reactor_state.rs`).

#![allow(dead_code)] // each test binary uses its own subset

use offloadnn_core::instance::PathOption;
use offloadnn_core::task::{QualityLevel, Task, TaskId};
use offloadnn_dnn::block::{BlockId, GroupId, ModelId};
use offloadnn_dnn::repository::DnnPath;
use offloadnn_dnn::{Config, PathConfig};
use offloadnn_net::codec::{ErrorCode, MemberInfo, MemberState, MembershipDecision};
use offloadnn_radio::SnrDb;
use offloadnn_serve::{HistogramSnapshot, MetricsSnapshot, Outcome, HISTOGRAM_BUCKETS};
use proptest::collection::vec;
use proptest::prelude::*;

pub fn byte() -> impl Strategy<Value = u8> {
    (0u16..256).prop_map(|b| b as u8)
}

pub fn ascii_string(max_len: usize) -> impl Strategy<Value = String> {
    vec(32u8..127, 0..max_len).prop_map(|b| String::from_utf8(b).expect("printable ascii"))
}

pub fn quality() -> impl Strategy<Value = QualityLevel> {
    (0.0f64..1.0, 1.0f64..1e7).prop_map(|(quality, bits)| QualityLevel { quality, bits })
}

pub fn task() -> impl Strategy<Value = Task> {
    (
        0u32..1_000_000,
        ascii_string(24),
        0u32..64,
        0.0f64..10.0,
        0.0f64..1e4,
        0.0f64..1.0,
        1e-3f64..10.0,
        -20.0f64..40.0,
        vec(quality(), 0..6),
        0.0f64..5.0,
    )
        .prop_map(
            |(
                id,
                name,
                group,
                priority,
                request_rate,
                min_accuracy,
                max_latency,
                snr,
                qualities,
                difficulty,
            )| Task {
                id: TaskId(id),
                name,
                group: GroupId(group),
                priority,
                request_rate,
                min_accuracy,
                max_latency,
                snr: SnrDb(snr),
                qualities,
                difficulty,
            },
        )
}

pub fn path_option() -> impl Strategy<Value = PathOption> {
    (
        0u32..32,
        0u32..64,
        0u8..5,
        proptest::bool::ANY,
        vec(0u32..4096, 0..12),
        quality(),
        0.0f64..1.0,
        0.0f64..0.5,
        0.0f64..100.0,
        ascii_string(16),
    )
        .prop_map(
            |(
                model,
                group,
                cfg,
                pruned,
                blocks,
                quality,
                accuracy,
                proc_seconds,
                training_seconds,
                label,
            )| {
                let config = match cfg {
                    0 => Config::A,
                    1 => Config::B,
                    2 => Config::C,
                    3 => Config::D,
                    _ => Config::E,
                };
                PathOption {
                    path: DnnPath {
                        model: ModelId(model),
                        group: GroupId(group),
                        config: PathConfig { config, pruned },
                        blocks: blocks.into_iter().map(BlockId).collect(),
                    },
                    quality,
                    accuracy,
                    proc_seconds,
                    training_seconds,
                    label,
                }
            },
        )
}

pub fn outcome() -> impl Strategy<Value = Outcome> {
    (0u8..4, 1e-3f64..1.0, 0.0f64..100.0, 0usize..64).prop_map(|(tag, admission, rbs, shard)| match tag {
        0 => Outcome::Admitted { admission, rbs, shard },
        1 => Outcome::Rejected { shard },
        2 => Outcome::Shed { shard },
        _ => Outcome::Expired { shard },
    })
}

pub fn histogram() -> impl Strategy<Value = HistogramSnapshot> {
    (vec(0u64..1_000_000, HISTOGRAM_BUCKETS), 0u64..1_000_000, 0u64..u64::MAX).prop_map(
        |(counts, count, sum_us)| {
            let mut buckets = [0u64; HISTOGRAM_BUCKETS];
            buckets.copy_from_slice(&counts);
            HistogramSnapshot { buckets, count, sum_us }
        },
    )
}

pub fn metrics() -> impl Strategy<Value = MetricsSnapshot> {
    (
        (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
        (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..4096, 0u64..4096),
        (0u64..1 << 20, 0u64..1 << 30, 0u64..1 << 20),
        histogram(),
        histogram(),
    )
        .prop_map(
            |(
                (submitted, admitted, rejected, shed, expired),
                (departed, solver_rounds, solver_errors, peak_queue_depth, peak_batch),
                (reshards, migrated, generation),
                latency,
                round_time,
            )| {
                MetricsSnapshot {
                    submitted,
                    admitted,
                    rejected,
                    shed,
                    expired,
                    departed,
                    solver_rounds,
                    solver_errors,
                    reshards,
                    migrated,
                    generation,
                    peak_queue_depth,
                    peak_batch,
                    latency,
                    round_time,
                }
            },
        )
}

pub fn error_code() -> impl Strategy<Value = ErrorCode> {
    (0u8..6).prop_map(|tag| match tag {
        0 => ErrorCode::Draining,
        1 => ErrorCode::NoOptions,
        2 => ErrorCode::Malformed,
        3 => ErrorCode::TooManyConnections,
        4 => ErrorCode::Internal,
        _ => ErrorCode::InvalidScale,
    })
}

pub fn member_state() -> impl Strategy<Value = MemberState> {
    (0u8..4).prop_map(|tag| match tag {
        0 => MemberState::Probing,
        1 => MemberState::Healthy,
        2 => MemberState::Ejected,
        _ => MemberState::Departed,
    })
}

pub fn membership_decision() -> impl Strategy<Value = MembershipDecision> {
    (0u8..4).prop_map(|tag| match tag {
        0 => MembershipDecision::Accepted,
        1 => MembershipDecision::Duplicate,
        2 => MembershipDecision::Stale,
        _ => MembershipDecision::Unsupported,
    })
}

pub fn member_info() -> impl Strategy<Value = MemberInfo> {
    (ascii_string(40), 0u64..u64::MAX, member_state()).prop_map(|(addr, incarnation, state)| MemberInfo {
        addr,
        incarnation,
        state,
    })
}

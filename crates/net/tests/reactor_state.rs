//! State-machine tests for the reactor frontend, at the byte level.
//!
//! The loopback suite proves end-to-end parity through the [`Client`]
//! library; these tests instead speak the wire protocol over raw sockets
//! to hit the reactor's per-connection state machine where it is
//! hardest: short reads split across every frame boundary, write
//! backpressure with partial-write resumption, a malformed byte stream
//! that must still flush every owed verdict before the close, and rapid
//! connection churn with abandoned in-flight requests.
//!
//! Frame contents come from the same proptest strategies as the codec
//! round-trip properties (`common/`).

mod common;

use common::{path_option, task};
use offloadnn_core::scenario::small_scenario;
use offloadnn_core::task::TaskId;
use offloadnn_net::codec::{self, Frame, SnapshotRequest, SubmitRequest};
use offloadnn_net::{AnyServer, Client, ClientConfig, NetConfig, ReactorConfig};
use offloadnn_serve::{Outcome, ServiceConfig};
use proptest::collection::vec;
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A service tuned for debug-mode CI: tiny batches, short windows.
fn quick_service() -> ServiceConfig {
    ServiceConfig {
        shards: 2,
        batch_max: 16,
        batch_window: Duration::from_micros(500),
        ..ServiceConfig::default()
    }
}

fn start_reactor(net: NetConfig, service: ServiceConfig) -> (AnyServer, offloadnn_core::scenario::Scenario) {
    let scenario = small_scenario(4);
    let server = AnyServer::start_reactor(
        ("127.0.0.1", 0),
        net,
        ReactorConfig::default(),
        service,
        &scenario.instance,
    )
    .expect("start reactor server");
    (server, scenario)
}

/// Reads frames off `sock` one byte at a time until `expected` frames
/// decoded (or the deadline passes). Asserts the stream is never
/// malformed mid-frame — the streaming distinction the codec guarantees.
fn read_frames_bytewise(sock: &mut TcpStream, expected: usize, deadline: Duration) -> Vec<Frame> {
    sock.set_read_timeout(Some(Duration::from_millis(50))).expect("read timeout");
    let hard_stop = Instant::now() + deadline;
    let mut buf = Vec::new();
    let mut frames = Vec::new();
    let mut byte = [0u8; 1];
    while frames.len() < expected {
        assert!(Instant::now() < hard_stop, "timed out after {} of {expected} frames", frames.len());
        match sock.read(&mut byte) {
            Ok(0) => panic!("peer closed after {} of {expected} frames", frames.len()),
            Ok(_) => buf.extend_from_slice(&byte),
            Err(e) if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut) => {
                continue
            }
            Err(e) => panic!("read failed after {got} of {expected} frames: {e}", got = frames.len()),
        }
        // Every prefix must decode as "incomplete", never as an error.
        if let Some((frame, consumed)) = codec::decode(&buf).expect("server bytes are never malformed") {
            buf.drain(..consumed);
            frames.push(frame);
        }
    }
    frames
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Generated submit frames trickled in one byte at a time — every
    /// frame boundary lands mid-read — each get exactly one correlated
    /// reply, with a snapshot frame interleaved; the server conserves.
    fn byte_at_a_time_pipelined_frames_resolve(
        submits in vec((task(), vec(path_option(), 1..4)), 1..5),
    ) {
        let (server, _scenario) = start_reactor(NetConfig::default(), quick_service());
        let mut sock = TcpStream::connect(server.local_addr()).expect("connect");
        sock.set_nodelay(true).expect("nodelay");

        // One byte stream: all submits, then a snapshot request.
        let mut wire = Vec::new();
        for (i, (task, options)) in submits.iter().cloned().enumerate() {
            wire.extend_from_slice(&codec::encode(&Frame::Submit(SubmitRequest {
                request_id: i as u64,
                deadline_us: 0,
                task,
                options,
            })));
        }
        let snapshot_id = 1_000_000u64;
        wire.extend_from_slice(&codec::encode(&Frame::Snapshot(SnapshotRequest {
            request_id: snapshot_id,
        })));
        for b in &wire {
            sock.write_all(std::slice::from_ref(b)).expect("write one byte");
        }

        let frames = read_frames_bytewise(&mut sock, submits.len() + 1, Duration::from_secs(30));
        // Per-connection FIFO: replies arrive in request order.
        for (i, frame) in frames.iter().take(submits.len()).enumerate() {
            match frame {
                Frame::Outcome(o) => prop_assert_eq!(o.request_id, i as u64),
                other => prop_assert!(false, "submit {i} answered with {other:?}"),
            }
        }
        match frames.last().expect("snapshot reply") {
            Frame::Metrics(m) => {
                prop_assert_eq!(m.request_id, snapshot_id);
                prop_assert!(!m.is_final);
                prop_assert_eq!(m.metrics.submitted, submits.len() as u64);
            }
            other => prop_assert!(false, "snapshot answered with {other:?}"),
        }

        drop(sock);
        let report = server.shutdown();
        prop_assert!(report.metrics.is_conserved(), "conservation: {:?}", report.metrics);
        prop_assert_eq!(report.metrics.submitted, submits.len() as u64);
    }
}

/// A malformed byte stream aborts the connection, but only after every
/// verdict the client is owed has flushed: two valid submits, then
/// garbage — the reply stream is outcome, outcome, Malformed error, EOF.
#[test]
fn malformed_stream_flushes_owed_verdicts_before_closing() {
    let (server, scenario) = start_reactor(NetConfig::default(), quick_service());
    let mut sock = TcpStream::connect(server.local_addr()).expect("connect");
    sock.set_nodelay(true).expect("nodelay");

    let mut wire = Vec::new();
    for i in 0..2u64 {
        wire.extend_from_slice(&codec::encode(&Frame::Submit(SubmitRequest {
            request_id: i,
            deadline_us: 0,
            task: scenario.instance.tasks[i as usize].clone(),
            options: scenario.instance.options[i as usize].clone(),
        })));
    }
    wire.extend_from_slice(b"\xde\xad\xbe\xef not a frame");
    sock.write_all(&wire).expect("write");

    let frames = read_frames_bytewise(&mut sock, 3, Duration::from_secs(30));
    assert!(matches!(&frames[0], Frame::Outcome(o) if o.request_id == 0), "first verdict: {frames:?}");
    assert!(matches!(&frames[1], Frame::Outcome(o) if o.request_id == 1), "second verdict: {frames:?}");
    match &frames[2] {
        Frame::Error(e) => assert_eq!(e.code, codec::ErrorCode::Malformed),
        other => panic!("garbage must be answered Malformed, got {other:?}"),
    }

    // After the error frame the server closes the connection.
    sock.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    let mut rest = Vec::new();
    match sock.read_to_end(&mut rest) {
        Ok(0) => {}
        Ok(n) => panic!("server sent {n} byte(s) past the closing error frame"),
        // A reset instead of FIN is also a close.
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {}
        Err(e) => panic!("waiting for close: {e}"),
    }

    let report = server.shutdown();
    assert!(report.metrics.is_conserved());
    assert_eq!(report.metrics.submitted, 2);
}

/// Write backpressure and partial-write resumption: a client pipelines
/// thousands of snapshot requests while refusing to read, so the
/// server's per-connection write queue fills past its pause threshold
/// and drains through `EPOLLOUT` resumptions once the client starts
/// reading. Every reply arrives, in request order.
#[test]
fn partial_writes_resume_and_replies_stay_ordered() {
    const REQUESTS: u64 = 2500;

    let (server, _scenario) = start_reactor(NetConfig::default(), quick_service());
    let sock = TcpStream::connect(server.local_addr()).expect("connect");
    sock.set_nodelay(true).expect("nodelay");

    let mut write_half = sock.try_clone().expect("clone socket");
    let writer = std::thread::spawn(move || {
        // ~3 MB of replies will be owed; the submit side is ~80 KB and
        // fits in socket buffers even while the server pauses reads.
        let mut wire = Vec::new();
        for i in 0..REQUESTS {
            wire.extend_from_slice(&codec::encode(&Frame::Snapshot(SnapshotRequest { request_id: i })));
        }
        write_half.write_all(&wire).expect("write pipelined snapshots");
    });

    // Let the server's write buffer fill while nothing reads.
    std::thread::sleep(Duration::from_millis(300));

    let mut sock = sock;
    sock.set_read_timeout(Some(Duration::from_millis(100))).expect("read timeout");
    let hard_stop = Instant::now() + Duration::from_secs(60);
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut next_id = 0u64;
    while next_id < REQUESTS {
        assert!(Instant::now() < hard_stop, "timed out at reply {next_id}/{REQUESTS}");
        match sock.read(&mut chunk) {
            Ok(0) => panic!("server closed at reply {next_id}/{REQUESTS}"),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut) => {
                continue
            }
            Err(e) => panic!("read failed at reply {next_id}/{REQUESTS}: {e}"),
        }
        while let Some((frame, consumed)) = codec::decode(&buf).expect("never malformed") {
            buf.drain(..consumed);
            match frame {
                Frame::Metrics(m) => {
                    assert_eq!(m.request_id, next_id, "replies must arrive in request order");
                    next_id += 1;
                }
                other => panic!("snapshot answered with {other:?}"),
            }
        }
    }
    writer.join().expect("writer thread");

    drop(sock);
    let report = server.shutdown();
    assert!(report.metrics.is_conserved());
}

/// Connection-churn chaos: waves of short-lived clients, half of them
/// vanishing with verdicts still in flight (dead-connection path), half
/// closing politely after collecting every reply. The reactor must free
/// every slot and the service must conserve — abandoned tickets are
/// still redeemed, never leaked.
#[test]
fn connection_churn_conserves_and_frees_every_slot() {
    const WAVES: usize = 5;
    const POLITE_PER_WAVE: usize = 6;
    const RUDE_PER_WAVE: usize = 6;
    const SUBMITS_PER_CLIENT: u64 = 8;

    let (server, scenario) = start_reactor(NetConfig::default(), quick_service());
    let addr = server.local_addr();
    let protos: Vec<_> =
        scenario.instance.tasks.iter().cloned().zip(scenario.instance.options.iter().cloned()).collect();

    let mut polite_offered = 0u64;
    let mut polite_resolved = 0u64;
    for wave in 0..WAVES {
        let (resolved, offered) = std::thread::scope(|scope| {
            let polite: Vec<_> = (0..POLITE_PER_WAVE)
                .map(|idx| {
                    let protos = &protos;
                    scope.spawn(move || {
                        let client = Client::connect(addr, ClientConfig::default()).expect("connect");
                        let mut pending = Vec::new();
                        for i in 0..SUBMITS_PER_CLIENT {
                            let proto = &protos[(idx + i as usize) % protos.len()];
                            let mut task = proto.0.clone();
                            task.id = TaskId((wave * 10_000 + idx * 100) as u32 + i as u32);
                            pending.push(client.submit(task, proto.1.clone(), None).expect("submit"));
                        }
                        let mut resolved = 0u64;
                        for p in pending {
                            match p.wait_timeout(Duration::from_secs(30)) {
                                Ok(
                                    Outcome::Admitted { .. }
                                    | Outcome::Rejected { .. }
                                    | Outcome::Shed { .. }
                                    | Outcome::Expired { .. },
                                ) => resolved += 1,
                                Err(e) => panic!("polite client lost a verdict: {e}"),
                            }
                        }
                        client.close();
                        resolved
                    })
                })
                .collect();
            let rude: Vec<_> = (0..RUDE_PER_WAVE)
                .map(|idx| {
                    let protos = &protos;
                    scope.spawn(move || {
                        // Raw socket: pipeline submits, vanish without
                        // reading a single reply (RST likely).
                        let mut sock = TcpStream::connect(addr).expect("connect");
                        let mut wire = Vec::new();
                        for i in 0..SUBMITS_PER_CLIENT {
                            let proto = &protos[(idx + i as usize) % protos.len()];
                            let mut task = proto.0.clone();
                            task.id = TaskId((wave * 10_000 + 5_000 + idx * 100) as u32 + i as u32);
                            wire.extend_from_slice(&codec::encode(&Frame::Submit(SubmitRequest {
                                request_id: i,
                                deadline_us: 0,
                                task,
                                options: proto.1.clone(),
                            })));
                        }
                        sock.write_all(&wire).expect("write");
                        drop(sock);
                    })
                })
                .collect();
            let mut resolved = 0u64;
            for h in polite {
                resolved += h.join().expect("polite client");
            }
            for h in rude {
                h.join().expect("rude client");
            }
            (resolved, (POLITE_PER_WAVE as u64) * SUBMITS_PER_CLIENT)
        });
        polite_resolved += resolved;
        polite_offered += offered;
    }

    // Every slot frees: the reactor reaps the abandoned connections too.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.active_connections() > 0 {
        assert!(Instant::now() < deadline, "{} connection slot(s) leaked", server.active_connections());
        std::thread::sleep(Duration::from_millis(5));
    }

    let report = server.shutdown();
    let m = &report.metrics;
    assert_eq!(polite_resolved, polite_offered, "polite clients saw every verdict");
    assert!(m.is_conserved(), "churn broke conservation: {m:?}");
    assert!(
        m.submitted >= polite_offered,
        "at least the polite submits ingressed: {} < {polite_offered}",
        m.submitted
    );
}

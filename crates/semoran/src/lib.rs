//! SEM-O-RAN baseline (Puligheddu et al., IEEE TMC 2023), reimplemented
//! from its published description for the paper's large-scale comparison.
//!
//! SEM-O-RAN maximises the total *value* (here: priority) of admitted
//! offloaded tasks subject to edge resources, with three behavioural
//! properties that differ from OffloaDNN and explain every gap in
//! Figs. 9–10 of the paper:
//!
//! 1. **Binary admission** — a task's requests are admitted in full or
//!    rejected in full (no fractional `z`).
//! 2. **Dedicated DNNs** — each admitted task loads its own full
//!    (unpruned) network; there is no block sharing, so memory is the
//!    *sum* of per-task footprints even when two tasks use structurally
//!    identical blocks.
//! 3. **Semantic compression** — the one lever it does have: task input
//!    images can be compressed to a lower semantic quality, trading
//!    accuracy for radio (and nothing else).
//!
//! Admission itself is a multi-dimensional knapsack; following the
//! SEM-O-RAN design we use a value-greedy pass with *balanced* resource
//! selection (each task picks the plan minimising its worst normalised
//! resource increment, to avoid starving any single resource), plus an
//! exact subset enumeration for small instances.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use offloadnn_core::instance::DotInstance;
use offloadnn_profiler::AccuracyModel;
use serde::{Deserialize, Serialize};

/// One admissible execution plan for a task: a dedicated unpruned DNN at a
/// semantic-compression level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SemPlan {
    /// Option index in the DOT instance this plan is derived from.
    pub option: usize,
    /// Semantic-compression factor in `(0, 1]` (1 = no compression).
    pub compression: f64,
    /// Accuracy after compression.
    pub accuracy: f64,
    /// Bits per image after compression.
    pub bits: f64,
    /// Physical RBs the slice needs (integer, full admitted rate).
    pub rbs: f64,
    /// Memory footprint in bytes (no sharing: full per-task sum).
    pub memory_bytes: f64,
    /// Compute usage in GPU-s/s at the full request rate.
    pub compute_seconds: f64,
}

/// A SEM-O-RAN solution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SemSolution {
    /// Per-task admission (binary).
    pub admitted: Vec<bool>,
    /// The plan of each admitted task.
    pub plans: Vec<Option<SemPlan>>,
    /// Total admitted value (`sum x * p`).
    pub value: f64,
    /// RBs used.
    pub rbs_used: f64,
    /// Memory used (bytes).
    pub memory_used: f64,
    /// Compute used (GPU-s/s).
    pub compute_used: f64,
    /// Solver wall-clock seconds.
    pub solve_seconds: f64,
}

impl SemSolution {
    /// Number of admitted tasks.
    pub fn admitted_tasks(&self) -> usize {
        self.admitted.iter().filter(|&&a| a).count()
    }
}

/// Errors from the baseline solver.
#[derive(Debug, Clone, PartialEq)]
pub enum SemError {
    /// The underlying DOT instance failed validation.
    InvalidInstance(String),
}

impl std::fmt::Display for SemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SemError::InvalidInstance(msg) => write!(f, "invalid instance: {msg}"),
        }
    }
}

impl std::error::Error for SemError {}

/// The SEM-O-RAN solver configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SemORanSolver {
    /// Semantic-compression factors to consider (descending; 1.0 first).
    pub compression_levels: Vec<f64>,
    /// Accuracy model used to price compression.
    pub accuracy: AccuracyModel,
    /// Run the exact subset enumeration when `T <=` this bound.
    pub exact_below: usize,
}

impl SemORanSolver {
    /// Reference configuration: four compression levels, exact for tiny
    /// instances.
    pub fn new() -> Self {
        Self {
            compression_levels: vec![1.0, 0.85, 0.7, 0.55],
            accuracy: AccuracyModel::reference(),
            exact_below: 12,
        }
    }

    /// Builds every admissible plan for task `t`.
    ///
    /// SEM-O-RAN does not shape or select DNN structures — that is
    /// OffloaDNN's contribution. Each task arrives with its *stock* DNN:
    /// the most accurate unpruned network available for it (maximising
    /// accuracy headroom is also what makes semantic compression viable).
    /// Plans therefore differ only in the compression level.
    pub fn plans_for(&self, instance: &DotInstance, t: usize) -> Vec<SemPlan> {
        let task = &instance.tasks[t];
        let b = instance.bits_per_rb(t);
        let mut plans = Vec::new();
        let stock = instance.options[t]
            .iter()
            .enumerate()
            .filter(|(_, opt)| !opt.path.config.pruned)
            .max_by(|(_, x), (_, y)| x.accuracy.total_cmp(&y.accuracy));
        if let Some((o, opt)) = stock {
            for &f in &self.compression_levels {
                let accuracy = (opt.accuracy + self.accuracy.quality_adjust(f)).max(0.0);
                if accuracy < task.min_accuracy {
                    continue;
                }
                let bits = opt.quality.bits * f;
                let net_budget = task.max_latency - opt.proc_seconds;
                if net_budget <= 0.0 {
                    continue;
                }
                let r_lat = bits / (b * net_budget);
                let r_rate = task.request_rate * bits / b;
                let rbs = r_lat.max(r_rate).ceil();
                if rbs > instance.budgets.rbs {
                    continue;
                }
                // No sharing: the memory footprint is the full sum over the
                // path's blocks, charged privately to this task.
                let memory_bytes: f64 = opt.path.blocks.iter().map(|&bl| instance.memory_of(bl)).sum();
                plans.push(SemPlan {
                    option: o,
                    compression: f,
                    accuracy,
                    bits,
                    rbs,
                    memory_bytes,
                    compute_seconds: task.request_rate * opt.proc_seconds,
                });
            }
        }
        plans
    }

    /// Balanced footprint of a plan: its worst normalised resource
    /// increment (the SEM-O-RAN "avoid resource starvation" criterion).
    pub fn balance(&self, instance: &DotInstance, p: &SemPlan) -> f64 {
        let b = &instance.budgets;
        (p.rbs / b.rbs).max(p.memory_bytes / b.memory_bytes).max(p.compute_seconds / b.compute_seconds)
    }

    /// The admissible plans of each task, least-compressed first: SEM-O-RAN
    /// preserves semantic quality and compresses only as far as admission
    /// requires.
    fn plan_lists(&self, instance: &DotInstance) -> Vec<Vec<SemPlan>> {
        (0..instance.num_tasks())
            .map(|t| {
                let mut plans = self.plans_for(instance, t);
                plans.sort_by(|a, b| b.compression.total_cmp(&a.compression));
                plans
            })
            .collect()
    }

    /// Solves the baseline problem.
    ///
    /// # Errors
    ///
    /// Returns [`SemError::InvalidInstance`] if the instance is malformed.
    pub fn solve(&self, instance: &DotInstance) -> Result<SemSolution, SemError> {
        instance.validate().map_err(|e| SemError::InvalidInstance(e.to_string()))?;
        let start = std::time::Instant::now();
        let plan_lists = self.plan_lists(instance);
        let mut sol = if instance.num_tasks() <= self.exact_below {
            self.solve_exact(instance, &plan_lists)
        } else {
            self.solve_greedy(instance, &plan_lists)
        };
        sol.solve_seconds = start.elapsed().as_secs_f64();
        Ok(sol)
    }

    /// Value-greedy admission in descending priority: each task is taken
    /// with its least-compressed plan that fits the remaining budgets
    /// (compressing further only when admission requires it).
    fn solve_greedy(&self, instance: &DotInstance, plan_lists: &[Vec<SemPlan>]) -> SemSolution {
        let n = instance.num_tasks();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| instance.tasks[b].priority.total_cmp(&instance.tasks[a].priority));

        let mut admitted = vec![false; n];
        let mut plans: Vec<Option<SemPlan>> = vec![None; n];
        let (mut rbs, mut mem, mut comp) = (0.0f64, 0.0f64, 0.0f64);
        let b = &instance.budgets;
        for &t in &order {
            for plan in &plan_lists[t] {
                if rbs + plan.rbs <= b.rbs
                    && mem + plan.memory_bytes <= b.memory_bytes
                    && comp + plan.compute_seconds <= b.compute_seconds
                {
                    rbs += plan.rbs;
                    mem += plan.memory_bytes;
                    comp += plan.compute_seconds;
                    admitted[t] = true;
                    plans[t] = Some(plan.clone());
                    break;
                }
            }
        }
        let value =
            admitted.iter().zip(&instance.tasks).map(|(&a, t)| if a { t.priority } else { 0.0 }).sum();
        SemSolution {
            admitted,
            plans,
            value,
            rbs_used: rbs,
            memory_used: mem,
            compute_used: comp,
            solve_seconds: 0.0,
        }
    }

    /// Exact subset enumeration: for each admitted subset, every task takes
    /// its *most compressed* plan (the feasibility-maximising choice), so a
    /// subset is declared infeasible only when no compression saves it.
    fn solve_exact(&self, instance: &DotInstance, plan_lists: &[Vec<SemPlan>]) -> SemSolution {
        let n = instance.num_tasks();
        let b = &instance.budgets;
        let mut best = self.solve_greedy(instance, plan_lists);
        for mask in 0u64..(1u64 << n) {
            let (mut rbs, mut mem, mut comp, mut value) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            let mut chosen: Vec<Option<SemPlan>> = vec![None; n];
            let mut ok = true;
            for t in 0..n {
                if mask & (1 << t) != 0 {
                    match plan_lists[t].last() {
                        Some(p) => {
                            rbs += p.rbs;
                            mem += p.memory_bytes;
                            comp += p.compute_seconds;
                            value += instance.tasks[t].priority;
                            chosen[t] = Some(p.clone());
                            if rbs > b.rbs || mem > b.memory_bytes || comp > b.compute_seconds {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if ok && value > best.value {
                let admitted: Vec<bool> = (0..n).map(|t| mask & (1 << t) != 0).collect();
                // Relax each admitted task back to its least-compressed plan
                // that keeps the subset feasible.
                let mut relaxed = chosen.clone();
                for t in 0..n {
                    if let Some(current) = &relaxed[t] {
                        for candidate in &plan_lists[t] {
                            let d_rbs = candidate.rbs - current.rbs;
                            let d_mem = candidate.memory_bytes - current.memory_bytes;
                            let d_comp = candidate.compute_seconds - current.compute_seconds;
                            if rbs + d_rbs <= b.rbs
                                && mem + d_mem <= b.memory_bytes
                                && comp + d_comp <= b.compute_seconds
                            {
                                rbs += d_rbs;
                                mem += d_mem;
                                comp += d_comp;
                                relaxed[t] = Some(candidate.clone());
                                break;
                            }
                        }
                    }
                }
                best = SemSolution {
                    admitted,
                    plans: relaxed,
                    value,
                    rbs_used: rbs,
                    memory_used: mem,
                    compute_used: comp,
                    solve_seconds: 0.0,
                };
            }
        }
        best
    }
}

impl Default for SemORanSolver {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use offloadnn_core::scenario::small_scenario;

    #[test]
    fn admits_small_scenario_fully() {
        let s = small_scenario(3);
        let sol = SemORanSolver::new().solve(&s.instance).unwrap();
        assert_eq!(sol.admitted_tasks(), 3, "plenty of resources");
        assert!(sol.rbs_used <= s.instance.budgets.rbs);
        assert!(sol.memory_used <= s.instance.budgets.memory_bytes);
    }

    #[test]
    fn plans_never_use_pruned_paths() {
        let s = small_scenario(5);
        let sol = SemORanSolver::new().solve(&s.instance).unwrap();
        for (t, plan) in sol.plans.iter().enumerate() {
            if let Some(p) = plan {
                assert!(!s.instance.options[t][p.option].path.config.pruned);
            }
        }
    }

    #[test]
    fn admission_is_binary_and_meets_accuracy() {
        let s = small_scenario(5);
        let sol = SemORanSolver::new().solve(&s.instance).unwrap();
        for (t, plan) in sol.plans.iter().enumerate() {
            if sol.admitted[t] {
                let p = plan.as_ref().expect("admitted task has a plan");
                assert!(p.accuracy >= s.instance.tasks[t].min_accuracy);
                assert!(p.compression <= 1.0 && p.compression > 0.0);
            } else {
                assert!(plan.is_none());
            }
        }
    }

    #[test]
    fn memory_is_summed_without_sharing() {
        // Admitted tasks on structurally identical paths still pay twice.
        let s = small_scenario(2);
        let sol = SemORanSolver::new().solve(&s.instance).unwrap();
        assert_eq!(sol.admitted_tasks(), 2);
        let per_task: f64 = sol.plans.iter().flatten().map(|p| p.memory_bytes).sum();
        assert!((sol.memory_used - per_task).abs() < 1.0);
        assert!(per_task > 0.0);
    }

    #[test]
    fn compression_is_used_when_radio_is_scarce() {
        let mut s = small_scenario(3);
        // Starve radio so that only compressed plans fit task rates.
        s.instance.budgets.rbs = 11.0;
        let sol = SemORanSolver::new().solve(&s.instance).unwrap();
        let used_compression = sol.plans.iter().flatten().any(|p| p.compression < 1.0);
        assert!(
            used_compression || sol.admitted_tasks() < 3,
            "scarce radio must force compression or rejection"
        );
        assert!(sol.rbs_used <= 11.0);
    }

    #[test]
    fn exact_at_least_as_good_as_greedy() {
        let s = small_scenario(5);
        let solver = SemORanSolver::new();
        let plans = solver.plan_lists(&s.instance);
        let g = solver.solve_greedy(&s.instance, &plans);
        let e = solver.solve_exact(&s.instance, &plans);
        assert!(e.value >= g.value - 1e-12);
    }
}

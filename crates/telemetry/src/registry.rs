//! The typed instrument registry: get-or-register counters, gauges and
//! per-phase histograms by name, snapshot everything at once.
//!
//! Registration takes a short-lived `RwLock`; the returned handles are
//! `Arc`s, so the hot path (incrementing, recording a span) never touches
//! the lock again. Names are `&'static str` by design: instruments are
//! declared at call sites, not built from runtime data, which keeps the
//! registry allocation-free after warm-up.

use crate::counter::{Counter, Gauge};
use crate::events::{Event, EventLog, Severity};
use crate::hist::{Histogram, HistogramSnapshot};
use crate::span::Span;
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Default bound of a registry's event ring buffer.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// A set of named instruments plus one bounded event log.
///
/// There is one process-wide registry behind [`crate::global`] (used by
/// the `span!` / `count!` macros), and runtimes that need isolated
/// accounting — e.g. one service fleet per test — create their own.
#[derive(Debug)]
pub struct Registry {
    started: Instant,
    counters: RwLock<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<&'static str, Arc<Gauge>>>,
    phases: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
    events: EventLog,
}

impl Registry {
    /// Creates an empty registry with the default event capacity.
    pub fn new() -> Self {
        Self::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// Creates an empty registry retaining at most `capacity` events.
    pub fn with_event_capacity(capacity: usize) -> Self {
        Self {
            started: Instant::now(),
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            phases: RwLock::new(BTreeMap::new()),
            events: EventLog::new(capacity),
        }
    }

    fn get_or_insert<T: Default>(map: &RwLock<BTreeMap<&'static str, Arc<T>>>, name: &'static str) -> Arc<T> {
        if let Some(found) = map.read().unwrap_or_else(|e| e.into_inner()).get(name) {
            return Arc::clone(found);
        }
        let mut map = map.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(name).or_default())
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Self::get_or_insert(&self.counters, name)
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Self::get_or_insert(&self.gauges, name)
    }

    /// The phase histogram named `name`, registering it on first use.
    pub fn phase(&self, name: &'static str) -> Arc<Histogram> {
        Self::get_or_insert(&self.phases, name)
    }

    /// Starts a span recording into phase `name` when it drops.
    ///
    /// Convenience for cold paths; hot paths should pre-register the
    /// histogram (or use the caching [`crate::span!`] macro) so each span
    /// costs two clock reads and one atomic record, with no map lookup.
    pub fn span(&self, name: &'static str) -> Span {
        if crate::enabled() {
            Span::on(&self.phase(name))
        } else {
            Span::noop()
        }
    }

    /// Appends a structured event (no-op while telemetry is off).
    pub fn event(&self, severity: Severity, target: &'static str, message: impl Into<String>) {
        if !crate::enabled() {
            return;
        }
        let at_us = self.started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.events.push(at_us, severity, target, message.into());
    }

    /// The event log (for direct inspection; exports go through
    /// [`Registry::snapshot`]).
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Copies every instrument and the retained events.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = self.counters.read().unwrap_or_else(|e| e.into_inner());
        let gauges = self.gauges.read().unwrap_or_else(|e| e.into_inner());
        let phases = self.phases.read().unwrap_or_else(|e| e.into_inner());
        RegistrySnapshot {
            counters: counters.iter().map(|(n, c)| (*n, c.get())).collect(),
            gauges: gauges.iter().map(|(n, g)| (*n, g.get())).collect(),
            phases: phases.iter().map(|(n, h)| (*n, h.snapshot())).collect(),
            events: self.events.snapshot(),
            events_dropped: self.events.dropped(),
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// Point-in-time copy of a [`Registry`], ready for export (see the
/// [`crate::export`] module: JSON-lines via
/// [`RegistrySnapshot::to_jsonl`], human-readable table via `Display`).
#[derive(Debug, Clone)]
pub struct RegistrySnapshot {
    /// `(name, value)` for every registered counter, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` for every registered gauge, sorted by name.
    pub gauges: Vec<(&'static str, u64)>,
    /// `(name, histogram)` for every registered phase, sorted by name.
    pub phases: Vec<(&'static str, HistogramSnapshot)>,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
    /// Events overwritten by the ring buffer before this snapshot.
    pub events_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn handles_are_shared_per_name() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x").get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b").inc();
        r.counter("a").add(2);
        r.gauge("depth").raise(5);
        r.phase("solve").record(Duration::from_micros(10));
        let s = r.snapshot();
        assert_eq!(s.counters, vec![("a", 2), ("b", 1)]);
        assert_eq!(s.gauges, vec![("depth", 5)]);
        assert_eq!(s.phases.len(), 1);
        assert_eq!(s.phases[0].1.count, 1);
    }

    #[test]
    fn span_records_into_its_phase() {
        let r = Registry::new();
        {
            let _span = r.span("phase");
        }
        // With telemetry compiled out the span records nothing — both
        // outcomes are correct for the respective configuration.
        let count = r.snapshot().phases.iter().find(|(n, _)| *n == "phase").map_or(0, |(_, h)| h.count);
        if crate::enabled() {
            assert_eq!(count, 1);
        } else {
            assert_eq!(count, 0);
        }
    }

    #[test]
    fn events_flow_into_the_snapshot() {
        let r = Registry::with_event_capacity(2);
        r.event(Severity::Info, "test", "one");
        r.event(Severity::Warn, "test", "two");
        r.event(Severity::Error, "test", "three");
        let s = r.snapshot();
        if crate::enabled() {
            assert_eq!(s.events.len(), 2, "ring bounded at 2");
            assert_eq!(s.events_dropped, 1);
            assert_eq!(s.events[1].message, "three");
        } else {
            assert!(s.events.is_empty());
        }
    }
}

//! Lock-free scalar instruments: monotonic counters and peak/level
//! gauges. One relaxed atomic op per update — safe to call from any
//! thread, including solver and shard hot paths.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding an instantaneous level or a running peak.
///
/// `set` overwrites; `raise` only ever increases (a peak tracker — the
/// serve runtime uses it for peak queue depth and peak batch size).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the level.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Raises the gauge to at least `value` (peak semantics).
    pub fn raise(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_set_overwrites_but_raise_only_rises() {
        let g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
        g.raise(9);
        g.raise(5);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn counters_are_send_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<Counter>();
        assert_sync::<Gauge>();
    }
}

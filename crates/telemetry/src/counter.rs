//! Lock-free scalar instruments: monotonic counters and peak/level
//! gauges. One relaxed atomic op per update — safe to call from any
//! thread, including solver and shard hot paths.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding an instantaneous level or a running peak.
///
/// `set` overwrites; `raise` only ever increases (a peak tracker — the
/// serve runtime uses it for peak queue depth and peak batch size).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the level.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Raises the gauge to at least `value` (peak semantics).
    pub fn raise(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// Increments the level by `n` (for up/down resource gauges such as
    /// live connection counts).
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrements the level by `n`, saturating at zero so a racing
    /// decrement can never wrap the gauge to `u64::MAX`.
    pub fn sub(&self, n: u64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(n);
            match self.0.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_set_overwrites_but_raise_only_rises() {
        let g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
        g.raise(9);
        g.raise(5);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn gauge_add_and_sub_track_a_level_and_saturate() {
        let g = Gauge::new();
        g.add(3);
        g.sub(1);
        assert_eq!(g.get(), 2);
        g.sub(10);
        assert_eq!(g.get(), 0, "sub saturates instead of wrapping");
    }

    #[test]
    fn counters_are_send_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<Counter>();
        assert_sync::<Gauge>();
    }
}

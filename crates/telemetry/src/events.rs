//! A bounded structured event log with ring-buffer semantics: the most
//! recent `capacity` events are retained, older ones are overwritten and
//! counted as dropped. Pushing never blocks on a full buffer and never
//! allocates beyond the event's own message.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Event severity, ordered from least to most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Diagnostic detail.
    Debug,
    /// Normal lifecycle milestones.
    Info,
    /// Degraded-but-functioning conditions (shedding, solver errors).
    Warn,
    /// Invariant violations and failures.
    Error,
}

impl Severity {
    /// Lower-case label, e.g. for JSONL export.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (counts every event ever pushed, so gaps
    /// in a snapshot reveal how many were overwritten before it).
    pub seq: u64,
    /// Microseconds since the owning registry was created.
    pub at_us: u64,
    /// Severity level.
    pub severity: Severity,
    /// Static component tag, e.g. `"serve.shard"`.
    pub target: &'static str,
    /// Free-form message.
    pub message: String,
}

/// The bounded ring buffer behind [`crate::Registry`]'s event log.
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
    ring: Mutex<VecDeque<Event>>,
}

impl EventLog {
    /// Creates a log retaining at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Appends an event; when full, the oldest event is overwritten and
    /// counted in [`EventLog::dropped`].
    pub fn push(&self, at_us: u64, severity: Severity, target: &'static str, message: String) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(Event { seq, at_us, severity, target, message });
    }

    /// Number of events overwritten so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Total events ever pushed (retained + overwritten).
    pub fn pushed(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Copies the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push(log: &EventLog, n: u64) {
        for i in 0..n {
            log.push(i, Severity::Info, "test", format!("event {i}"));
        }
    }

    #[test]
    fn retains_the_most_recent_events() {
        let log = EventLog::new(3);
        push(&log, 5);
        let events = log.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 2, "oldest two overwritten");
        assert_eq!(events[2].seq, 4);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.pushed(), 5);
    }

    #[test]
    fn under_capacity_drops_nothing() {
        let log = EventLog::new(8);
        push(&log, 3);
        assert_eq!(log.snapshot().len(), 3);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn severities_are_ordered() {
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(Severity::Warn.as_str(), "warn");
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let log = EventLog::new(0);
        push(&log, 2);
        assert_eq!(log.snapshot().len(), 1);
        assert_eq!(log.dropped(), 1);
    }
}

//! Fixed-bucket log-scale latency histograms (extracted from the serve
//! runtime's bespoke metrics so every crate shares one implementation).
//!
//! Edge cases are part of the contract: a zero-duration sample lands in
//! bucket 0, a `u64::MAX`-microsecond (or longer) sample lands in the
//! overflow bucket, and no sample ever panics or is silently dropped.
//! The running sum saturates instead of wrapping, so one pathological
//! sample cannot corrupt the mean.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets: one sub-microsecond bucket, power-of-two
/// buckets up to ~2.1 s, and one overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 23;

/// The bucket a `us`-microsecond observation belongs to: bucket 0 for
/// sub-microsecond, bucket `i >= 1` for `[2^(i-1) µs, 2^i µs)`, and the
/// last bucket for everything from `2^21 µs` (~2.1 s) up — including
/// `u64::MAX`.
pub fn bucket_index(us: u64) -> usize {
    (64 - us.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Lower bound (inclusive) of bucket `i` in microseconds.
pub fn bucket_lower_us(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A fixed-bucket log-scale histogram over microsecond durations.
///
/// Recording is two relaxed atomic increments plus one saturating
/// accumulate — safe from any worker thread, snapshotable from any other
/// without stopping writers.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration.
    pub fn record(&self, d: Duration) {
        self.record_us(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Records one observation given directly in microseconds.
    pub fn record_us(&self, us: u64) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating, not wrapping: a u64::MAX sample must pin the sum at
        // the ceiling rather than corrupt the mean of everything after it.
        let _ =
            self.sum_us.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| Some(s.saturating_add(us)));
    }

    /// Copies the current bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; see [`bucket_index`] for the bucket layout.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Saturating sum of all observations in microseconds.
    pub sum_us: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        Self { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum_us: 0 }
    }

    /// Mean observation, or zero when empty.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.sum_us / self.count)
    }

    /// Upper bound of the bucket containing the `p`-quantile
    /// (`0 < p <= 1`), or zero when empty. Log-bucket resolution: the
    /// estimate is within 2x of the true quantile.
    pub fn quantile(&self, p: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Duration::from_micros(1u64 << i);
            }
        }
        Duration::from_micros(1u64 << (HISTOGRAM_BUCKETS - 1))
    }

    /// Upper bound of the highest non-empty bucket, or zero when empty.
    /// A cheap "max observation" within log-bucket resolution.
    pub fn max_bound(&self) -> Duration {
        for (i, &c) in self.buckets.iter().enumerate().rev() {
            if c > 0 {
                return Duration::from_micros(1u64 << i);
            }
        }
        Duration::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log_spaced() {
        let h = Histogram::new();
        h.record(Duration::from_micros(0)); // bucket 0
        h.record(Duration::from_micros(1)); // bucket 1
        h.record(Duration::from_micros(3)); // bucket 2
        h.record(Duration::from_micros(1000)); // bucket 10
        h.record(Duration::from_secs(100)); // overflow bucket
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.buckets[10], 1);
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn zero_duration_lands_in_the_first_bucket() {
        let h = Histogram::new();
        h.record(Duration::ZERO);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.count, 1);
        assert_eq!(s.sum_us, 0);
        assert_eq!(s.quantile(0.5), Duration::from_micros(1), "bucket-0 upper bound");
    }

    #[test]
    fn u64_max_lands_in_the_last_bucket_without_wrapping() {
        let h = Histogram::new();
        h.record_us(u64::MAX);
        h.record_us(u64::MAX); // a second one must saturate, not wrap
        h.record(Duration::MAX); // > u64::MAX µs, clamped into the overflow bucket
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 3);
        assert_eq!(s.sum_us, u64::MAX, "sum saturates at the ceiling");
        assert!(s.mean() >= Duration::from_micros(u64::MAX / 3));
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(1 << 20), 21);
        assert_eq!(bucket_index(1 << 21), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_lower_us(i)), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(2 * bucket_lower_us(i) - 1), i, "upper bound of bucket {i}");
        }
    }

    #[test]
    fn quantiles_bound_observations() {
        let h = Histogram::new();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 1000] {
            h.record(Duration::from_micros(us));
        }
        let s = h.snapshot();
        assert!(s.quantile(0.5) >= Duration::from_micros(32));
        assert!(s.quantile(0.5) <= Duration::from_micros(128));
        assert!(s.quantile(1.0) >= Duration::from_micros(1000));
        assert_eq!(HistogramSnapshot::empty().quantile(0.5), Duration::ZERO);
        assert_eq!(HistogramSnapshot::empty().max_bound(), Duration::ZERO);
        assert!(s.max_bound() >= Duration::from_micros(1000));
    }
}

//! Exporters for [`RegistrySnapshot`]: machine-readable JSON-lines
//! ([`RegistrySnapshot::to_jsonl`]) and a human-readable aligned table
//! (the `Display` impl). Both are hand-rolled — this crate takes no
//! dependencies, and the formats are small and stable.

use crate::hist::HistogramSnapshot;
use crate::registry::RegistrySnapshot;
use std::fmt::{self, Write as _};

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn phase_line(name: &str, h: &HistogramSnapshot, out: &mut String) {
    let _ = write!(
        out,
        "{{\"type\":\"phase\",\"name\":\"{name}\",\"count\":{},\"sum_us\":{},\"mean_us\":{},\
         \"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"max_us\":{},\"buckets\":[",
        h.count,
        h.sum_us,
        h.mean().as_micros(),
        h.quantile(0.5).as_micros(),
        h.quantile(0.9).as_micros(),
        h.quantile(0.99).as_micros(),
        h.max_bound().as_micros(),
    );
    for (i, b) in h.buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{b}");
    }
    out.push_str("]}\n");
}

impl RegistrySnapshot {
    /// Serialises the snapshot as JSON-lines: one object per counter,
    /// gauge, phase and event, then one trailing `meta` object.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{{\"type\":\"counter\",\"name\":\"{name}\",\"value\":{value}}}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "{{\"type\":\"gauge\",\"name\":\"{name}\",\"value\":{value}}}");
        }
        for (name, h) in &self.phases {
            phase_line(name, h, &mut out);
        }
        for e in &self.events {
            let _ = write!(
                out,
                "{{\"type\":\"event\",\"seq\":{},\"at_us\":{},\"severity\":\"{}\",\"target\":\"{}\",\
                 \"message\":\"",
                e.seq,
                e.at_us,
                e.severity.as_str(),
                e.target,
            );
            escape_json(&e.message, &mut out);
            out.push_str("\"}\n");
        }
        let _ = writeln!(out, "{{\"type\":\"meta\",\"events_dropped\":{}}}", self.events_dropped);
        out
    }
}

impl fmt::Display for RegistrySnapshot {
    /// An aligned table: per-phase latency breakdown first (the part the
    /// `telemetry_report` binary is for), then counters, gauges and the
    /// retained events.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.phases.is_empty() {
            writeln!(
                f,
                "{:<28} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
                "phase", "count", "mean", "p50", "p90", "p99", "max"
            )?;
            for (name, h) in &self.phases {
                writeln!(
                    f,
                    "{:<28} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
                    name,
                    h.count,
                    format!("{:.3?}", h.mean()),
                    format!("{:.3?}", h.quantile(0.5)),
                    format!("{:.3?}", h.quantile(0.9)),
                    format!("{:.3?}", h.quantile(0.99)),
                    format!("{:.3?}", h.max_bound()),
                )?;
            }
        }
        if !self.counters.is_empty() {
            writeln!(f, "counters")?;
            for (name, value) in &self.counters {
                writeln!(f, "  {name:<34} {value:>12}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "gauges")?;
            for (name, value) in &self.gauges {
                writeln!(f, "  {name:<34} {value:>12}")?;
            }
        }
        write!(f, "events ({} retained, {} dropped)", self.events.len(), self.events_dropped)?;
        for e in &self.events {
            write!(
                f,
                "\n  [{:>12.3?}] {:<5} {}: {}",
                std::time::Duration::from_micros(e.at_us),
                e.severity.as_str(),
                e.target,
                e.message
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::events::Severity;
    use crate::registry::Registry;
    use std::time::Duration;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("reqs").add(42);
        r.gauge("depth").raise(7);
        r.phase("solve").record(Duration::from_micros(100));
        r.phase("solve").record(Duration::from_micros(300));
        r.event(Severity::Warn, "test", "quoted \"message\"\nwith newline");
        r
    }

    #[test]
    fn jsonl_has_one_object_per_line_and_escapes() {
        let s = sample_registry().snapshot();
        let jsonl = s.to_jsonl();
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "not an object: {line}");
        }
        assert!(jsonl.contains("\"type\":\"counter\",\"name\":\"reqs\",\"value\":42"));
        assert!(jsonl.contains("\"type\":\"phase\",\"name\":\"solve\",\"count\":2"));
        assert!(jsonl.contains("\"events_dropped\":0"));
        if crate::enabled() {
            assert!(jsonl.contains("quoted \\\"message\\\"\\nwith newline"), "escaped: {jsonl}");
        }
    }

    #[test]
    fn table_lists_phases_counters_gauges_events() {
        let text = sample_registry().snapshot().to_string();
        assert!(text.contains("phase"));
        assert!(text.contains("solve"));
        assert!(text.contains("reqs"));
        assert!(text.contains("depth"));
        assert!(text.contains("events ("));
    }

    #[test]
    fn empty_snapshot_renders() {
        let text = Registry::new().snapshot().to_string();
        assert!(text.contains("events (0 retained, 0 dropped)"));
        let jsonl = Registry::new().snapshot().to_jsonl();
        assert_eq!(jsonl.lines().count(), 1, "meta line only: {jsonl}");
    }
}

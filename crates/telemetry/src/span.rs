//! Scoped timing spans: start one at the top of a phase, and its drop
//! records the elapsed monotonic time into that phase's histogram.
//!
//! The cost model the rest of the workspace relies on:
//!
//! * telemetry **on** — two `Instant::now()` reads plus one histogram
//!   record per span (~60–100 ns total on commodity x86);
//! * telemetry **off at runtime** ([`crate::set_enabled`]`(false)`) — one
//!   predictable branch, no clock read;
//! * the `disabled` **feature** — [`crate::enabled`] is a constant
//!   `false`, so the span code folds away entirely.

use crate::hist::Histogram;
use std::sync::Arc;
use std::time::Instant;

/// A scoped phase timer; records on drop. Obtain one from
/// [`crate::span!`], [`crate::Registry::span`] or [`Span::on`].
#[must_use = "a span measures until it is dropped; bind it with `let` for the scope of the phase"]
#[derive(Debug)]
pub struct Span {
    inner: Option<(Arc<Histogram>, Instant)>,
}

impl Span {
    /// Starts a span recording into `hist`, honouring the global
    /// enable switch.
    pub fn on(hist: &Arc<Histogram>) -> Self {
        if crate::enabled() {
            Self { inner: Some((Arc::clone(hist), Instant::now())) }
        } else {
            Self::noop()
        }
    }

    /// A span that records nothing (what instrumented paths get while
    /// telemetry is off).
    pub const fn noop() -> Self {
        Self { inner: None }
    }

    /// Whether this span will record on drop.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Ends the span now (an explicit alternative to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((hist, started)) = self.inner.take() {
            hist.record(started.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn span_records_elapsed_time_on_drop() {
        let hist = Arc::new(Histogram::new());
        {
            let _span = Span::on(&hist);
            std::thread::sleep(Duration::from_micros(200));
        }
        let s = hist.snapshot();
        if crate::enabled() {
            assert_eq!(s.count, 1);
            assert!(s.sum_us >= 100, "a 200 µs sleep must record at least 100 µs, got {}", s.sum_us);
        } else {
            assert_eq!(s.count, 0);
        }
    }

    #[test]
    fn noop_span_records_nothing() {
        let hist = Arc::new(Histogram::new());
        {
            let span = Span::noop();
            assert!(!span.is_recording());
        }
        assert_eq!(hist.snapshot().count, 0);
    }

    #[test]
    fn finish_is_equivalent_to_drop() {
        let hist = Arc::new(Histogram::new());
        Span::on(&hist).finish();
        assert_eq!(hist.snapshot().count, u64::from(crate::enabled()));
    }
}

//! # offloadnn-telemetry — unified tracing, counters and profiling hooks
//!
//! One shared observability layer for the whole workspace, replacing the
//! ad-hoc reporting paths that used to live separately in `core`
//! (`metrics.rs`/`report.rs`), `serve` (bespoke atomics) and `emu`:
//!
//! * **Counters & gauges** ([`Counter`], [`Gauge`]) — one relaxed atomic
//!   op per update, behind a typed [`Registry`].
//! * **Spans** ([`Span`], [`span!`]) — scoped monotonic timers that
//!   aggregate into per-phase log-bucket histograms ([`Histogram`]); the
//!   solver's clique/tree/alloc phases and the serve runtime's
//!   ingress/batch/drain paths record through these.
//! * **Events** ([`Registry::event`], [`event!`]) — a bounded ring-buffer
//!   structured log with severity levels; overflow overwrites the oldest
//!   record and counts it, never blocks.
//! * **Exporters** — JSON-lines ([`RegistrySnapshot::to_jsonl`]) and a
//!   human-readable table (`Display` on [`RegistrySnapshot`]).
//!
//! ## Cost when off
//!
//! [`set_enabled`]`(false)` reduces every instrumented hot path to one
//! predictable branch (no clock reads, no allocation). Building with the
//! `disabled` feature makes [`enabled`] a constant `false`, so the
//! instrumentation folds out at compile time. The data primitives stay
//! real in both configurations: runtimes (e.g. `offloadnn-serve`) use
//! [`Counter`]/[`Histogram`] for functional accounting such as the
//! conservation invariant, which must hold with telemetry on *and* off.
//!
//! ```
//! use offloadnn_telemetry as telemetry;
//!
//! {
//!     let _span = telemetry::span!("demo.phase"); // records on drop
//!     telemetry::count!("demo.items");
//!     telemetry::event!(telemetry::Severity::Info, "demo", "processed {} item(s)", 1);
//! }
//!
//! let snapshot = telemetry::global().snapshot();
//! println!("{snapshot}");              // aligned per-phase table
//! println!("{}", snapshot.to_jsonl()); // machine-readable JSON lines
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod counter;
mod events;
mod export;
mod hist;
mod registry;
mod span;

pub use counter::{Counter, Gauge};
pub use events::{Event, EventLog, Severity};
pub use hist::{bucket_index, bucket_lower_us, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use registry::{Registry, RegistrySnapshot, DEFAULT_EVENT_CAPACITY};
pub use span::Span;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether instrumentation records anything right now. Constant `false`
/// when the `disabled` feature is on; otherwise the runtime switch set by
/// [`set_enabled`] (default `true`).
pub fn enabled() -> bool {
    if cfg!(feature = "disabled") {
        return false;
    }
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off at runtime (process-wide). Has no effect
/// under the `disabled` feature, where telemetry is compiled out.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide registry that the [`span!`], [`count!`] and
/// [`event!`] macros record into. Created on first use. Runtimes needing
/// isolated accounting (one fleet per test, say) create their own
/// [`Registry`] instead.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Starts a [`Span`] on the named phase of the [`global`] registry.
///
/// The histogram handle is resolved once and cached in a local static, so
/// steady-state cost is one branch + two clock reads + one atomic record
/// — no registry lookup. With telemetry off it is one branch.
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        if $crate::enabled() {
            static __PHASE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
                ::std::sync::OnceLock::new();
            $crate::Span::on(__PHASE.get_or_init(|| $crate::global().phase($name)))
        } else {
            $crate::Span::noop()
        }
    }};
}

/// Increments the named counter of the [`global`] registry by one (or by
/// an explicit amount), with the same local-static handle caching as
/// [`span!`]. Gated on [`enabled`]: use it for *observational* counts on
/// hot paths; functional accounting should hold its own [`Counter`].
#[macro_export]
macro_rules! count {
    ($name:literal) => {
        $crate::count!($name, 1)
    };
    ($name:literal, $n:expr) => {{
        if $crate::enabled() {
            static __COUNTER: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
                ::std::sync::OnceLock::new();
            __COUNTER.get_or_init(|| $crate::global().counter($name)).add($n);
        }
    }};
}

/// Appends a formatted event to the [`global`] registry's ring buffer.
/// The format arguments are not evaluated while telemetry is off.
#[macro_export]
macro_rules! event {
    ($severity:expr, $target:literal, $($arg:tt)+) => {{
        if $crate::enabled() {
            $crate::global().event($severity, $target, ::std::format!($($arg)+));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macros_record_into_the_global_registry() {
        {
            let _span = span!("lib.test.phase");
        }
        count!("lib.test.count", 3);
        event!(Severity::Debug, "lib.test", "value {}", 7);
        let snap = global().snapshot();
        let phase = snap.phases.iter().find(|(n, _)| *n == "lib.test.phase");
        let counter = snap.counters.iter().find(|(n, _)| *n == "lib.test.count");
        if enabled() {
            assert!(phase.is_some_and(|(_, h)| h.count >= 1));
            assert!(counter.is_some_and(|(_, v)| *v >= 3));
            assert!(snap.events.iter().any(|e| e.target == "lib.test" && e.message == "value 7"));
        } else {
            assert!(phase.is_none());
            assert!(counter.is_none());
        }
    }

    #[cfg(not(feature = "disabled"))]
    #[test]
    fn runtime_switch_stops_recording() {
        // Serialise against other tests touching the global switch.
        set_enabled(false);
        {
            let span = span!("lib.test.disabled-phase");
            assert!(!span.is_recording());
        }
        count!("lib.test.disabled-count");
        set_enabled(true);
        let snap = global().snapshot();
        assert!(!snap.phases.iter().any(|(n, _)| *n == "lib.test.disabled-phase"));
        assert!(!snap.counters.iter().any(|(n, _)| *n == "lib.test.disabled-count"));
    }

    #[cfg(feature = "disabled")]
    #[test]
    fn disabled_feature_is_a_constant_off() {
        assert!(!enabled());
        set_enabled(true); // must have no effect
        assert!(!enabled());
    }
}
